// Streaming sink tests: the TraceSink interface on TraceDomain, the
// FileStreamSink's file-identity and finalization protocol, O(ring) memory
// in streaming mode, sink lifecycle edge cases (mid-run attach, destruction
// with a sink attached, disabled domains), and TraceReader's truncated-file
// handling. The TraceSinkTest suite runs under TSAN in CI (sinks live on
// the flush path, past the executor's happens-before edge).
#include <gtest/gtest.h>

#include <cstdint>
#include <cstdio>
#include <cstring>
#include <string>
#include <vector>

#include "src/core/tap_engine.h"
#include "src/sim/simulator.h"
#include "src/telemetry/file_stream_sink.h"
#include "src/telemetry/trace_domain.h"
#include "src/telemetry/trace_reader.h"

namespace cinder {
namespace {

// Counts everything it sees; optionally records the records themselves.
class CountingSink : public TraceSink {
 public:
  void OnAttach(const TraceDomain& domain) override {
    ++attaches;
    first_seen_frame_seq = domain.frames_flushed();
  }
  void OnRecord(const TraceRecord& r) override {
    ++records;
    if (keep) {
      seen.push_back(r);
    }
  }
  void OnFrame(uint64_t seq, const TraceDomain& domain) override {
    (void)domain;
    ++frames;
    last_frame_seq = seq;
  }
  void OnDetach(const TraceDomain& domain) override {
    (void)domain;
    ++detaches;
  }

  bool keep = false;
  std::vector<TraceRecord> seen;
  int attaches = 0;
  int detaches = 0;
  uint64_t records = 0;
  uint64_t frames = 0;
  uint64_t last_frame_seq = 0;
  uint64_t first_seen_frame_seq = 0;
};

TelemetryConfig SmallConfig() {
  TelemetryConfig cfg;
  cfg.enabled = true;
  cfg.ring_bytes = 4 * 1024;
  cfg.spill_bytes = 4 * 1024;  // 128 records — tiny, to make drops easy.
  return cfg;
}

std::string TempPath(const std::string& name) { return ::testing::TempDir() + name; }

std::vector<unsigned char> Slurp(const std::string& path) {
  std::vector<unsigned char> bytes;
  std::FILE* f = std::fopen(path.c_str(), "rb");
  if (f == nullptr) {
    return bytes;
  }
  std::fseek(f, 0, SEEK_END);
  bytes.resize(static_cast<size_t>(std::ftell(f)));
  std::fseek(f, 0, SEEK_SET);
  if (!bytes.empty() && std::fread(bytes.data(), 1, bytes.size(), f) != bytes.size()) {
    bytes.clear();
  }
  std::fclose(f);
  return bytes;
}

void Chop(const std::string& path, size_t keep_bytes) {
  const auto bytes = Slurp(path);
  ASSERT_LE(keep_bytes, bytes.size());
  std::FILE* f = std::fopen(path.c_str(), "wb");
  ASSERT_NE(f, nullptr);
  ASSERT_EQ(std::fwrite(bytes.data(), 1, keep_bytes, f), keep_bytes);
  std::fclose(f);
}

void EmitBatch(TraceDomain& domain, int count, int64_t base) {
  for (int i = 0; i < count; ++i) {
    domain.ring(0)->Emit(domain.time_us(), RecordKind::kShardBatch, 0, 0, 0, base + i, 1);
  }
  domain.FlushFrame();
}

// -- Routing & lifecycle --------------------------------------------------------

TEST(TraceSinkTest, SinksReceiveRecordsInsteadOfSpillRetention) {
  TraceDomain domain(SmallConfig());
  CountingSink sink;
  domain.AddSink(&sink);
  EXPECT_EQ(domain.sink_count(), 1u);

  EmitBatch(domain, 10, 0);
  // 10 records + 1 frame mark reached the sink; nothing was retained.
  EXPECT_EQ(sink.records, 11u);
  EXPECT_EQ(sink.frames, 1u);
  EXPECT_EQ(domain.spill_size(), 0u);
  EXPECT_EQ(domain.spill_capacity(), 0u);

  domain.RemoveSink(&sink);
  EXPECT_EQ(sink.detaches, 1);
  EXPECT_EQ(domain.sink_count(), 0u);
  // Without sinks the spill retains again.
  EmitBatch(domain, 5, 100);
  EXPECT_EQ(domain.spill_size(), 6u);
  EXPECT_EQ(sink.records, 11u);
}

TEST(TraceSinkTest, RetainWithSinksStreamsAndRetains) {
  TelemetryConfig cfg = SmallConfig();
  cfg.retain_with_sinks = true;
  TraceDomain domain(cfg);
  CountingSink sink;
  domain.AddSink(&sink);
  EmitBatch(domain, 10, 0);
  EXPECT_EQ(sink.records, 11u);
  EXPECT_EQ(domain.spill_size(), 11u);
}

TEST(TraceSinkTest, MidRunAttachStartsFreshEpoch) {
  TraceDomain domain(SmallConfig());
  EmitBatch(domain, 4, 0);  // Frame 0, retained (no sinks yet).
  EmitBatch(domain, 4, 10);  // Frame 1.

  CountingSink sink;
  sink.keep = true;
  domain.AddSink(&sink);
  EXPECT_EQ(sink.attaches, 1);
  EXPECT_EQ(sink.first_seen_frame_seq, 2u);  // Next frame it will see.

  EmitBatch(domain, 3, 20);
  // The sink saw only the post-attach epoch: 3 records + the mark, whose
  // sequence number continues the domain's (2), not a restart.
  ASSERT_EQ(sink.seen.size(), 4u);
  EXPECT_EQ(sink.seen[0].v0, 20);
  EXPECT_EQ(sink.last_frame_seq, 2u);
  EXPECT_EQ(sink.seen.back().kind, static_cast<uint8_t>(RecordKind::kFrameMark));
  EXPECT_EQ(sink.seen.back().v0, 2);
}

TEST(TraceSinkTest, DomainDestructionDetachesAndFlushesPendingRecords) {
  CountingSink sink;
  {
    TraceDomain domain(SmallConfig());
    domain.AddSink(&sink);
    EmitBatch(domain, 5, 0);
    // Leave 3 records undrained in the ring; the destructor must flush them
    // as one final frame before detaching.
    for (int i = 0; i < 3; ++i) {
      domain.ring(0)->Emit(0, RecordKind::kShardBatch, 0, 0, 0, 100 + i, 0);
    }
  }
  EXPECT_EQ(sink.detaches, 1);
  EXPECT_EQ(sink.frames, 2u);
  EXPECT_EQ(sink.records, 5u + 1u + 3u + 1u);
}

TEST(TraceSinkTest, DestructorAddsNoEmptyFrameWhenAlreadyFlushed) {
  CountingSink sink;
  {
    TraceDomain domain(SmallConfig());
    domain.AddSink(&sink);
    EmitBatch(domain, 5, 0);
  }
  EXPECT_EQ(sink.frames, 1u);  // No trailing empty frame.
  EXPECT_EQ(sink.detaches, 1);
}

TEST(TraceSinkTest, DisabledDomainIgnoresSinksEntirely) {
  TelemetryConfig cfg;
  cfg.enabled = false;
  TraceDomain domain(cfg);
  CountingSink sink;
  domain.AddSink(&sink);
  EXPECT_EQ(domain.sink_count(), 0u);
  EXPECT_EQ(sink.attaches, 0);
  domain.FlushFrame();
  EXPECT_EQ(sink.records, 0u);
  EXPECT_EQ(sink.frames, 0u);
  EXPECT_EQ(domain.spill_capacity(), 0u);
}

TEST(TraceSinkTest, DisabledSimulatorWithStreamPathIsNoOp) {
  const std::string path = TempPath("disabled_stream.bin");
  std::remove(path.c_str());
  SimConfig cfg;
  cfg.telemetry.enabled = false;
  cfg.telemetry.stream_path = path;
  Simulator sim(cfg);
  EXPECT_EQ(sim.stream_sink(), nullptr);
  sim.Run(Duration::Millis(30));
  // No sink, no file, no spill allocation.
  std::FILE* f = std::fopen(path.c_str(), "rb");
  EXPECT_EQ(f, nullptr);
  if (f != nullptr) {
    std::fclose(f);
  }
  EXPECT_EQ(sim.telemetry().spill_capacity(), 0u);
}

// -- File identity & O(ring) memory ---------------------------------------------

TEST(TraceSinkTest, StreamedFileIsByteIdenticalToWriteFile) {
  // One run, streamed and retained simultaneously: the incremental file a
  // FileStreamSink produces must equal the post-hoc WriteFile dump of the
  // same records byte for byte (timing records differ across runs, so the
  // comparison must happen within a single run).
  SimConfig cfg;
  cfg.exec.tap_workers = 2;
  cfg.telemetry.enabled = true;
  cfg.telemetry.spill_grow = true;
  cfg.telemetry.retain_with_sinks = true;
  const std::string streamed = TempPath("streamed.bin");
  const std::string posthoc = TempPath("posthoc.bin");
  cfg.telemetry.stream_path = streamed;
  {
    Simulator sim(cfg);
    Kernel& kernel = sim.kernel();
    for (int p = 0; p < 6; ++p) {
      Reserve* pool =
          kernel.Create<Reserve>(kernel.root_container_id(), Label(Level::k1), "pool");
      pool->Deposit(ToQuantity(Energy::Joules(10.0)));
      Reserve* app = kernel.Create<Reserve>(kernel.root_container_id(), Label(Level::k1), "app");
      Tap* tap = kernel.Create<Tap>(kernel.root_container_id(), Label(Level::k1), "tap",
                                    pool->id(), app->id());
      tap->SetConstantPower(Power::Milliwatts(50 + p));
      ASSERT_TRUE(sim.taps().Register(tap->id()));
    }
    ASSERT_NE(sim.stream_sink(), nullptr);
    sim.Run(Duration::Millis(500));
    sim.telemetry().FlushFrame();
    // Finalize the stream, then dump the retained copy of the same records.
    sim.telemetry().RemoveSink(sim.stream_sink());
    ASSERT_TRUE(sim.telemetry().WriteFile(posthoc));
    EXPECT_EQ(sim.telemetry().dropped_records(), 0u);
  }
  const auto streamed_bytes = Slurp(streamed);
  const auto posthoc_bytes = Slurp(posthoc);
  ASSERT_GT(streamed_bytes.size(), sizeof(TraceFileHeader));
  EXPECT_EQ(streamed_bytes, posthoc_bytes);
  std::remove(streamed.c_str());
  std::remove(posthoc.c_str());
}

TEST(TraceSinkTest, LongStreamingRunKeepsMemoryAtRingScaleWithZeroDrops) {
  // >= 10x the spill capacity worth of records, streamed: the spill must
  // never allocate and nothing may drop.
  TelemetryConfig cfg = SmallConfig();  // Spill capacity: 128 records.
  TraceDomain domain(cfg);
  const std::string path = TempPath("long_stream.bin");
  FileStreamSink sink;
  ASSERT_TRUE(sink.Open(path));
  domain.AddSink(&sink);
  const int kBatches = 200;
  const int kPerBatch = 20;  // 4200 records total, ~33x spill capacity.
  for (int b = 0; b < kBatches; ++b) {
    EmitBatch(domain, kPerBatch, b * 1000);
  }
  EXPECT_EQ(domain.spill_capacity(), 0u);
  EXPECT_EQ(domain.spill_size(), 0u);
  EXPECT_EQ(domain.dropped_records(), 0u);
  domain.RemoveSink(&sink);
  ASSERT_TRUE(sink.ok());

  TraceReader reader;
  std::string error;
  ASSERT_TRUE(TraceReader::LoadFile(path, &reader, &error)) << error;
  EXPECT_FALSE(reader.truncated());
  EXPECT_TRUE(reader.complete());
  EXPECT_EQ(reader.records().size(), static_cast<size_t>(kBatches * (kPerBatch + 1)));
  EXPECT_EQ(reader.frames(), static_cast<uint64_t>(kBatches));
  std::remove(path.c_str());
}

TEST(TraceSinkTest, MultipleSinksSeeTheSameStream) {
  TraceDomain domain(SmallConfig());
  const std::string path = TempPath("multi_sink.bin");
  FileStreamSink file_sink;
  ASSERT_TRUE(file_sink.Open(path));
  CountingSink counter;
  domain.AddSink(&file_sink);
  domain.AddSink(&counter);
  EmitBatch(domain, 7, 0);
  domain.RemoveSink(&file_sink);
  EXPECT_EQ(counter.records, 8u);
  EXPECT_EQ(file_sink.records_written(), 8u);
  TraceReader reader;
  ASSERT_TRUE(TraceReader::LoadFile(path, &reader));
  EXPECT_EQ(reader.records().size(), 8u);
  std::remove(path.c_str());
}

TEST(TraceSinkTest, FsyncPolicyStreamsCorrectly) {
  TraceDomain domain(SmallConfig());
  const std::string path = TempPath("fsync_stream.bin");
  FileStreamSink sink;
  FileStreamSinkOptions opts;
  opts.fsync_every_frames = 2;
  ASSERT_TRUE(sink.Open(path, opts));
  domain.AddSink(&sink);
  for (int b = 0; b < 5; ++b) {
    EmitBatch(domain, 3, b * 10);
  }
  domain.RemoveSink(&sink);
  ASSERT_TRUE(sink.ok());
  TraceReader reader;
  ASSERT_TRUE(TraceReader::LoadFile(path, &reader));
  EXPECT_EQ(reader.frames(), 5u);
  EXPECT_TRUE(reader.complete());
  std::remove(path.c_str());
}

// -- Truncated files -------------------------------------------------------------

TEST(TraceSinkTest, UnfinalizedStreamParsesAsTruncatedPrefix) {
  // A "killed" writer: records on disk behind a placeholder header.
  TraceDomain domain(SmallConfig());
  const std::string path = TempPath("killed_stream.bin");
  {
    FileStreamSink sink;
    ASSERT_TRUE(sink.Open(path));
    domain.AddSink(&sink);
    EmitBatch(domain, 6, 0);
    EmitBatch(domain, 6, 10);
    domain.RemoveSink(&sink);  // Flushes stdio; also patches the header.
  }
  // Reconstruct the killed-mid-run state: the records as streamed, behind
  // the placeholder header Finish never got to patch.
  auto bytes = Slurp(path);
  ASSERT_GT(bytes.size(), sizeof(TraceFileHeader));
  TraceFileHeader placeholder{};
  std::memcpy(placeholder.magic, kTraceFileMagic, sizeof(placeholder.magic));
  placeholder.record_size = sizeof(TraceRecord);
  placeholder.record_count = 0;
  std::memcpy(bytes.data(), &placeholder, sizeof(placeholder));
  {
    std::FILE* f = std::fopen(path.c_str(), "wb");
    ASSERT_NE(f, nullptr);
    ASSERT_EQ(std::fwrite(bytes.data(), 1, bytes.size(), f), bytes.size());
    std::fclose(f);
  }

  TraceReader reader;
  std::string error;
  ASSERT_TRUE(TraceReader::LoadFile(path, &reader, &error)) << error;
  EXPECT_TRUE(reader.truncated());
  EXPECT_FALSE(reader.complete());
  EXPECT_EQ(reader.records().size(), 14u);  // Every whole record on disk.
  EXPECT_EQ(reader.frames(), 2u);
  std::remove(path.c_str());
}

TEST(TraceSinkTest, ByteChoppedFileParsesWholeRecordsAndFlagsTruncation) {
  TraceDomain domain(SmallConfig());
  const std::string path = TempPath("chopped_stream.bin");
  {
    FileStreamSink sink;
    ASSERT_TRUE(sink.Open(path));
    domain.AddSink(&sink);
    EmitBatch(domain, 9, 0);
    domain.RemoveSink(&sink);  // Finalized: header says 10 records.
  }
  const size_t full = Slurp(path).size();
  ASSERT_EQ(full, sizeof(TraceFileHeader) + 10 * sizeof(TraceRecord));

  // Chop mid-record: 4 whole records + 7 stray bytes.
  Chop(path, sizeof(TraceFileHeader) + 4 * sizeof(TraceRecord) + 7);
  TraceReader reader;
  std::string error;
  ASSERT_TRUE(TraceReader::LoadFile(path, &reader, &error)) << error;
  EXPECT_TRUE(reader.truncated());
  ASSERT_EQ(reader.records().size(), 4u);
  EXPECT_EQ(reader.records()[3].v0, 3);  // The prefix parsed correctly.

  // Chop inside the header: a clean error, never a crash or misparse.
  Chop(path, sizeof(TraceFileHeader) / 2);
  TraceReader half;
  error.clear();
  EXPECT_FALSE(TraceReader::LoadFile(path, &half, &error));
  EXPECT_FALSE(error.empty());
  std::remove(path.c_str());
}

TEST(TraceSinkTest, EveryChopLengthEitherFailsCleanlyOrFlagsTruncation) {
  // The regression sweep: byte-chop a real streamed file at many lengths;
  // LoadFile must never crash, never misparse, and only report a complete
  // stream at the full length.
  TraceDomain domain(SmallConfig());
  const std::string path = TempPath("chop_sweep.bin");
  std::vector<unsigned char> full_bytes;
  {
    FileStreamSink sink;
    ASSERT_TRUE(sink.Open(path));
    domain.AddSink(&sink);
    EmitBatch(domain, 5, 0);
    domain.RemoveSink(&sink);
    full_bytes = Slurp(path);
  }
  for (size_t keep = 0; keep <= full_bytes.size(); keep += 9) {
    std::FILE* f = std::fopen(path.c_str(), "wb");
    ASSERT_NE(f, nullptr);
    if (keep > 0) {
      ASSERT_EQ(std::fwrite(full_bytes.data(), 1, keep, f), keep);
    }
    std::fclose(f);
    TraceReader reader;
    const bool loaded = TraceReader::LoadFile(path, &reader);
    if (keep < sizeof(TraceFileHeader)) {
      EXPECT_FALSE(loaded) << "chop at " << keep;
    } else if (loaded && keep < full_bytes.size()) {
      EXPECT_TRUE(reader.truncated()) << "chop at " << keep;
    }
  }
  // And the untouched file is complete.
  {
    std::FILE* f = std::fopen(path.c_str(), "wb");
    ASSERT_NE(f, nullptr);
    ASSERT_EQ(std::fwrite(full_bytes.data(), 1, full_bytes.size(), f), full_bytes.size());
    std::fclose(f);
  }
  TraceReader reader;
  ASSERT_TRUE(TraceReader::LoadFile(path, &reader));
  EXPECT_TRUE(reader.complete());
  std::remove(path.c_str());
}

// -- Drop accounting -------------------------------------------------------------

TEST(TraceSinkTest, RingDropSplitSurfacesInReaderFromDomainAndFile) {
  TelemetryConfig cfg = SmallConfig();
  cfg.ring_bytes = 16 * sizeof(TraceRecord);  // Tiny ring: overwrites easily.
  cfg.spill_grow = true;
  TraceDomain domain(cfg);
  // Overflow the ring before flushing: 40 into a 16-slot ring = 24 dropped.
  for (int i = 0; i < 40; ++i) {
    domain.ring(0)->Emit(0, RecordKind::kShardBatch, 0, 0, 0, i, 0);
  }
  domain.FlushFrame();
  EXPECT_EQ(domain.ring_dropped(), 24u);

  TraceReader from_domain = TraceReader::FromDomain(domain);
  EXPECT_EQ(from_domain.ring_dropped(), 24u);
  EXPECT_EQ(from_domain.spill_dropped(), 0u);
  EXPECT_EQ(from_domain.dropped(), 24u);
  EXPECT_FALSE(from_domain.complete());

  const std::string path = TempPath("ring_drops.bin");
  ASSERT_TRUE(domain.WriteFile(path));
  TraceReader from_file;
  ASSERT_TRUE(TraceReader::LoadFile(path, &from_file));
  // The frame mark's v1 stamp carries the split into the file.
  EXPECT_EQ(from_file.ring_dropped(), 24u);
  EXPECT_EQ(from_file.spill_dropped(), 0u);
  EXPECT_FALSE(from_file.complete());
  std::remove(path.c_str());
}

}  // namespace
}  // namespace cinder
