#include "src/base/table_writer.h"

#include <gtest/gtest.h>

namespace cinder {
namespace {

TEST(TableWriterTest, CsvOutput) {
  TableWriter t("demo");
  t.SetColumns({"a", "b"});
  t.AddRow({"1", "2"});
  t.AddRow({"3", "4"});
  EXPECT_EQ(t.ToCsv(), "a,b\n1,2\n3,4\n");
}

TEST(TableWriterTest, AsciiAlignsColumns) {
  TableWriter t("demo");
  t.SetColumns({"name", "v"});
  t.AddRow({"x", "123456"});
  std::string ascii = t.ToAscii();
  EXPECT_NE(ascii.find("| name |"), std::string::npos);
  EXPECT_NE(ascii.find("123456"), std::string::npos);
  // Header separator present.
  EXPECT_NE(ascii.find("|------|"), std::string::npos);
}

TEST(TableWriterTest, NumFormatsPrecision) {
  EXPECT_EQ(TableWriter::Num(3.14159, 2), "3.14");
  EXPECT_EQ(TableWriter::Num(10.0, 0), "10");
  EXPECT_EQ(TableWriter::Num(-1.5, 1), "-1.5");
}

TEST(TableWriterTest, ShortRowsPadded) {
  TableWriter t("demo");
  t.SetColumns({"a", "b", "c"});
  t.AddRow({"1"});
  std::string ascii = t.ToAscii();
  EXPECT_NE(ascii.find("| 1 |"), std::string::npos);
}

}  // namespace
}  // namespace cinder
