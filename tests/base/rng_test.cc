#include "src/base/rng.h"

#include <gtest/gtest.h>

#include <set>

namespace cinder {
namespace {

TEST(RngTest, DeterministicForSameSeed) {
  Rng a(123);
  Rng b(123);
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(a.NextU64(), b.NextU64());
  }
}

TEST(RngTest, DifferentSeedsDiverge) {
  Rng a(1);
  Rng b(2);
  int same = 0;
  for (int i = 0; i < 100; ++i) {
    if (a.NextU64() == b.NextU64()) {
      ++same;
    }
  }
  EXPECT_LT(same, 3);
}

TEST(RngTest, UniformDoubleInUnitInterval) {
  Rng r(7);
  for (int i = 0; i < 10000; ++i) {
    double v = r.UniformDouble();
    EXPECT_GE(v, 0.0);
    EXPECT_LT(v, 1.0);
  }
}

TEST(RngTest, UniformDoubleMeanNearHalf) {
  Rng r(99);
  double sum = 0.0;
  const int n = 100000;
  for (int i = 0; i < n; ++i) {
    sum += r.UniformDouble();
  }
  EXPECT_NEAR(sum / n, 0.5, 0.01);
}

TEST(RngTest, UniformU64RespectsBound) {
  Rng r(11);
  std::set<uint64_t> seen;
  for (int i = 0; i < 1000; ++i) {
    uint64_t v = r.UniformU64(10);
    EXPECT_LT(v, 10u);
    seen.insert(v);
  }
  EXPECT_EQ(seen.size(), 10u);  // All values hit.
}

TEST(RngTest, UniformIntInclusiveRange) {
  Rng r(13);
  for (int i = 0; i < 1000; ++i) {
    int64_t v = r.UniformInt(-3, 3);
    EXPECT_GE(v, -3);
    EXPECT_LE(v, 3);
  }
}

TEST(RngTest, GaussianMoments) {
  Rng r(17);
  double sum = 0.0;
  double sq = 0.0;
  const int n = 100000;
  for (int i = 0; i < n; ++i) {
    double v = r.NextGaussian();
    sum += v;
    sq += v * v;
  }
  EXPECT_NEAR(sum / n, 0.0, 0.02);
  EXPECT_NEAR(sq / n, 1.0, 0.03);
}

TEST(RngTest, ClampedGaussianStaysInBounds) {
  Rng r(19);
  for (int i = 0; i < 10000; ++i) {
    double v = r.ClampedGaussian(1.0, 0.5, 0.8, 1.3);
    EXPECT_GE(v, 0.8);
    EXPECT_LE(v, 1.3);
  }
}

TEST(RngTest, BernoulliFrequency) {
  Rng r(23);
  int hits = 0;
  const int n = 100000;
  for (int i = 0; i < n; ++i) {
    if (r.Bernoulli(0.06)) {
      ++hits;
    }
  }
  EXPECT_NEAR(static_cast<double>(hits) / n, 0.06, 0.01);
}

TEST(SplitMixTest, KnownExpansionIsStable) {
  SplitMix64 sm(0);
  uint64_t first = sm.Next();
  SplitMix64 sm2(0);
  EXPECT_EQ(sm2.Next(), first);
  EXPECT_NE(sm.Next(), first);
}

}  // namespace
}  // namespace cinder
