#include "src/base/units.h"

#include <gtest/gtest.h>

namespace cinder {
namespace {

TEST(DurationTest, Construction) {
  EXPECT_EQ(Duration::Micros(1500).us(), 1500);
  EXPECT_EQ(Duration::Millis(2).us(), 2000);
  EXPECT_EQ(Duration::Seconds(3).us(), 3000000);
  EXPECT_EQ(Duration::Minutes(1).us(), 60000000);
  EXPECT_EQ(Duration::SecondsF(0.5).us(), 500000);
  EXPECT_TRUE(Duration::Zero().IsZero());
}

TEST(DurationTest, Arithmetic) {
  Duration a = Duration::Millis(10);
  Duration b = Duration::Millis(4);
  EXPECT_EQ((a + b).ms(), 14);
  EXPECT_EQ((a - b).ms(), 6);
  EXPECT_EQ((a * 3).ms(), 30);
  EXPECT_EQ((a / 2).ms(), 5);
  EXPECT_EQ(a / b, 2);       // Integer ratio.
  EXPECT_EQ((a % b).ms(), 2);
  EXPECT_LT(b, a);
}

TEST(DurationTest, ToString) {
  EXPECT_EQ(Duration::Seconds(5).ToString(), "5s");
  EXPECT_EQ(Duration::Millis(5).ToString(), "5ms");
  EXPECT_EQ(Duration::Micros(5).ToString(), "5us");
}

TEST(SimTimeTest, Arithmetic) {
  SimTime t = SimTime::Zero() + Duration::Seconds(2);
  EXPECT_EQ(t.us(), 2000000);
  SimTime u = t + Duration::Millis(500);
  EXPECT_EQ((u - t).ms(), 500);
  EXPECT_LT(t, u);
  EXPECT_DOUBLE_EQ(u.seconds_f(), 2.5);
}

TEST(PowerTest, Construction) {
  EXPECT_EQ(Power::Milliwatts(137).uw(), 137000);
  EXPECT_EQ(Power::Watts(1.5).uw(), 1500000);
  EXPECT_DOUBLE_EQ(Power::Milliwatts(699).watts_f(), 0.699);
}

TEST(PowerTest, Arithmetic) {
  Power p = Power::Milliwatts(100) + Power::Milliwatts(37);
  EXPECT_EQ(p.uw(), 137000);
  p -= Power::Milliwatts(37);
  EXPECT_EQ(p.uw(), 100000);
  EXPECT_EQ((p * 3).uw(), 300000);
}

TEST(EnergyTest, Construction) {
  EXPECT_EQ(Energy::Microjoules(1).nj(), 1000);
  EXPECT_EQ(Energy::Millijoules(1).nj(), 1000000);
  EXPECT_EQ(Energy::Joules(1.0).nj(), 1000000000);
  EXPECT_DOUBLE_EQ(Energy::Joules(9.5).joules_f(), 9.5);
}

TEST(EnergyTest, PowerTimesDuration) {
  // 137 mW for 1 ms = 137 uJ.
  Energy e = Power::Milliwatts(137) * Duration::Millis(1);
  EXPECT_EQ(e.nj(), 137000);
  // Commutes.
  EXPECT_EQ((Duration::Millis(1) * Power::Milliwatts(137)).nj(), e.nj());
  // 1 uW for 1 us = 1 pJ -> rounds down to 0 nJ.
  EXPECT_EQ((Power::Microwatts(1) * Duration::Micros(1)).nj(), 0);
  // 1 uW for 1 ms = 1 nJ exactly.
  EXPECT_EQ((Power::Microwatts(1) * Duration::Millis(1)).nj(), 1);
}

TEST(EnergyTest, PaperScaleQuantities) {
  // The paper's radio activation: 9.5 J over ~22 s of 0.4 W + ramp.
  Energy ramp = Power::Milliwatts(350) * Duration::Seconds(2);
  Energy tail = Power::Milliwatts(400) * Duration::Seconds(22);
  EXPECT_EQ((ramp + tail).joules_f(), 9.5);
}

TEST(EnergyTest, AveragePower) {
  Power p = AveragePower(Energy::Joules(9.5), Duration::Seconds(19));
  EXPECT_EQ(p.uw(), 500000);
  EXPECT_EQ(AveragePower(Energy::Joules(1.0), Duration::Zero()).uw(), 0);
}

TEST(EnergyTest, MinMax) {
  Energy a = Energy::Joules(1.0);
  Energy b = Energy::Joules(2.0);
  EXPECT_EQ(MinEnergy(a, b), a);
  EXPECT_EQ(MaxEnergy(a, b), b);
}

TEST(EnergyTest, Negation) {
  Energy e = Energy::Millijoules(5);
  EXPECT_TRUE((-e).IsNegative());
  EXPECT_EQ((-e).nj(), -5000000);
}

class PowerDurationRoundTrip : public ::testing::TestWithParam<std::pair<int64_t, int64_t>> {};

TEST_P(PowerDurationRoundTrip, EnergyIsExactForMillisecondGrid) {
  auto [mw, ms] = GetParam();
  Energy e = Power::Milliwatts(mw) * Duration::Millis(ms);
  // mW * ms = uJ exactly.
  EXPECT_EQ(e.nj(), mw * ms * 1000);
}

INSTANTIATE_TEST_SUITE_P(Grid, PowerDurationRoundTrip,
                         ::testing::Values(std::pair<int64_t, int64_t>{1, 1},
                                           std::pair<int64_t, int64_t>{137, 1},
                                           std::pair<int64_t, int64_t>{699, 10},
                                           std::pair<int64_t, int64_t>{750, 1000},
                                           std::pair<int64_t, int64_t>{14, 3600000}));

}  // namespace
}  // namespace cinder
