#include "src/base/status.h"

#include <gtest/gtest.h>

#include "src/base/strings.h"

namespace cinder {
namespace {

TEST(StatusTest, ToStringCoversAllCodes) {
  EXPECT_EQ(StatusToString(Status::kOk), "OK");
  EXPECT_EQ(StatusToString(Status::kErrNotFound), "ERR_NOT_FOUND");
  EXPECT_EQ(StatusToString(Status::kErrPermission), "ERR_PERMISSION");
  EXPECT_EQ(StatusToString(Status::kErrNoResource), "ERR_NO_RESOURCE");
  EXPECT_EQ(StatusToString(Status::kErrInvalidArg), "ERR_INVALID_ARG");
  EXPECT_EQ(StatusToString(Status::kErrBadState), "ERR_BAD_STATE");
  EXPECT_EQ(StatusToString(Status::kErrWouldBlock), "ERR_WOULD_BLOCK");
  EXPECT_EQ(StatusToString(Status::kErrExhausted), "ERR_EXHAUSTED");
  EXPECT_EQ(StatusToString(Status::kErrOutOfRange), "ERR_OUT_OF_RANGE");
  EXPECT_EQ(StatusToString(Status::kErrWrongType), "ERR_WRONG_TYPE");
  EXPECT_EQ(StatusToString(Status::kErrAlreadyExists), "ERR_ALREADY_EXISTS");
}

TEST(ResultTest, HoldsValue) {
  Result<int> r(42);
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r.value(), 42);
  EXPECT_EQ(*r, 42);
  EXPECT_EQ(r.value_or(0), 42);
}

TEST(ResultTest, HoldsError) {
  Result<int> r(Status::kErrNotFound);
  EXPECT_FALSE(r.ok());
  EXPECT_EQ(r.status(), Status::kErrNotFound);
  EXPECT_EQ(r.value_or(-1), -1);
}

TEST(ResultTest, WorksWithMoveOnlyish) {
  Result<std::string> r(std::string("hello"));
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r->size(), 5u);
}

Status Fails() { return Status::kErrBadState; }
Status Chained() {
  CINDER_RETURN_IF_ERROR(Fails());
  return Status::kOk;
}

TEST(ResultTest, ReturnIfErrorMacro) { EXPECT_EQ(Chained(), Status::kErrBadState); }

TEST(StringsTest, StrFormat) {
  EXPECT_EQ(StrFormat("%d-%s", 7, "x"), "7-x");
  EXPECT_EQ(StrFormat("%.2f", 1.005), "1.00");
  EXPECT_EQ(StrFormat("empty"), "empty");
}

}  // namespace
}  // namespace cinder
