#include "src/base/time_series.h"

#include <gtest/gtest.h>

namespace cinder {
namespace {

SimTime At(double secs) { return SimTime::FromMicros(static_cast<int64_t>(secs * 1e6)); }

TEST(TimeSeriesTest, BasicStats) {
  TimeSeries s("x");
  s.Append(At(0), 1.0);
  s.Append(At(1), 3.0);
  s.Append(At(2), 2.0);
  EXPECT_EQ(s.size(), 3u);
  EXPECT_DOUBLE_EQ(s.MinValue(), 1.0);
  EXPECT_DOUBLE_EQ(s.MaxValue(), 3.0);
  EXPECT_DOUBLE_EQ(s.MeanValue(), 2.0);
  EXPECT_DOUBLE_EQ(s.LastValue(), 2.0);
}

TEST(TimeSeriesTest, EmptyIsSafe) {
  TimeSeries s;
  EXPECT_TRUE(s.empty());
  EXPECT_DOUBLE_EQ(s.MinValue(), 0.0);
  EXPECT_DOUBLE_EQ(s.MeanValue(), 0.0);
  EXPECT_DOUBLE_EQ(s.IntegralOverTime(), 0.0);
  EXPECT_DOUBLE_EQ(s.LastValue(42.0), 42.0);
}

TEST(TimeSeriesTest, IntegralOfConstantPower) {
  // 0.7 W sampled for 10 s should integrate to 7 J.
  TimeSeries s("p");
  for (int i = 0; i <= 10; ++i) {
    s.Append(At(i), 0.7);
  }
  EXPECT_NEAR(s.IntegralOverTime(), 7.0, 1e-9);
}

TEST(TimeSeriesTest, IntegralTrapezoidal) {
  TimeSeries s("p");
  s.Append(At(0), 0.0);
  s.Append(At(2), 2.0);
  EXPECT_NEAR(s.IntegralOverTime(), 2.0, 1e-9);  // Triangle: 1/2 * 2 * 2.
}

TEST(TimeSeriesTest, TimeAboveThreshold) {
  TimeSeries s("p");
  s.Append(At(0), 1.0);
  s.Append(At(1), 1.0);
  s.Append(At(2), 0.1);
  s.Append(At(3), 0.1);
  s.Append(At(4), 1.0);
  // Intervals counted by left endpoint: [0,1) and [1,2) qualify; the final
  // sample at t=4 opens no interval.
  EXPECT_NEAR(s.TimeAbove(0.5), 2.0, 1e-9);
}

TEST(TimeSeriesTest, MeanAbove) {
  TimeSeries s("p");
  s.Append(At(0), 10.0);
  s.Append(At(1), 0.0);
  s.Append(At(2), 20.0);
  EXPECT_DOUBLE_EQ(s.MeanAbove(5.0), 15.0);
  EXPECT_DOUBLE_EQ(s.MeanAbove(100.0), 0.0);
}

TEST(TimeSeriesTest, RebinAverages) {
  TimeSeries s("p");
  for (int i = 0; i < 10; ++i) {
    s.Append(At(0.1 * i), static_cast<double>(i));
  }
  TimeSeries binned = s.Rebin(Duration::Millis(500));
  ASSERT_EQ(binned.size(), 2u);
  EXPECT_DOUBLE_EQ(binned[0].value, 2.0);  // mean of 0..4
  EXPECT_DOUBLE_EQ(binned[1].value, 7.0);  // mean of 5..9
}

TEST(TimeSeriesTest, RebinEmptyAndZeroBin) {
  TimeSeries s("p");
  EXPECT_TRUE(s.Rebin(Duration::Seconds(1)).empty());
  s.Append(At(0), 1.0);
  EXPECT_TRUE(s.Rebin(Duration::Zero()).empty());
}

}  // namespace
}  // namespace cinder
