// Fuzz-style property test: the SMD ring transports arbitrary message
// sequences without loss, reordering, or corruption, across ring sizes and
// randomized interleavings of pushes and pops.
#include <gtest/gtest.h>

#include <deque>

#include "src/arm9/smd.h"
#include "src/base/rng.h"

namespace cinder {
namespace {

SmdMessage RandomMessage(Rng& rng) {
  SmdMessage m;
  m.port = static_cast<SmdPort>(1 + rng.UniformU64(4));
  m.opcode = static_cast<uint32_t>(rng.UniformU64(1000));
  const int n_args = static_cast<int>(rng.UniformU64(4));
  for (int i = 0; i < n_args; ++i) {
    m.args.push_back(static_cast<int64_t>(rng.NextU64()));
  }
  const size_t payload = rng.UniformU64(64);
  for (size_t i = 0; i < payload; ++i) {
    m.payload.push_back(static_cast<uint8_t>(rng.NextU64()));
  }
  return m;
}

void ExpectEqual(const SmdMessage& a, const SmdMessage& b) {
  EXPECT_EQ(a.port, b.port);
  EXPECT_EQ(a.opcode, b.opcode);
  EXPECT_EQ(a.args, b.args);
  EXPECT_EQ(a.payload, b.payload);
}

struct RingCase {
  uint64_t seed;
  size_t ring_bytes;
};

class SmdRingProperty : public ::testing::TestWithParam<RingCase> {};

TEST_P(SmdRingProperty, LosslessFifoUnderRandomInterleaving) {
  const RingCase& c = GetParam();
  Rng rng(c.seed);
  Kernel k;
  Segment* seg = k.Create<Segment>(k.root_container_id(), Label(Level::k1), "ring",
                                   c.ring_bytes + 8);
  SmdRing ring(&k, seg->id());
  std::deque<SmdMessage> expected;

  int transported = 0;
  for (int op = 0; op < 2000; ++op) {
    if (rng.Bernoulli(0.55)) {
      SmdMessage m = RandomMessage(rng);
      if (ring.Push(m) == Status::kOk) {
        expected.push_back(m);
      }
      // kErrExhausted is legitimate backpressure; the message is dropped by
      // the SENDER, never by the ring.
    } else {
      auto out = ring.Pop();
      if (out.has_value()) {
        ASSERT_FALSE(expected.empty()) << "ring invented a message, seed=" << c.seed;
        ExpectEqual(*out, expected.front());
        expected.pop_front();
        ++transported;
      } else {
        EXPECT_TRUE(expected.empty()) << "ring lost messages, seed=" << c.seed;
      }
    }
  }
  // Drain.
  while (auto out = ring.Pop()) {
    ASSERT_FALSE(expected.empty());
    ExpectEqual(*out, expected.front());
    expected.pop_front();
    ++transported;
  }
  EXPECT_TRUE(expected.empty());
  EXPECT_GT(transported, 100) << "too little traffic to be meaningful";
}

INSTANTIATE_TEST_SUITE_P(Rings, SmdRingProperty,
                         ::testing::Values(RingCase{1, 256}, RingCase{2, 512},
                                           RingCase{3, 1024}, RingCase{4, 4096},
                                           RingCase{5, 300}));

}  // namespace
}  // namespace cinder
