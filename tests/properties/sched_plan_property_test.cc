// Property test: quantum-batched scheduling is invisible under churn.
//
// Randomized fleets run the same deterministic op script — deposits,
// withdrawals, active-reserve flips, reserve attach/detach, mid-run process
// spawns, thread sleeps — once on the plan-free reference path (K = 0) and
// once per batched setting K in {1, 4, 16, 64}. Every fingerprint the
// scheduler can influence (reserve levels, quanta counters, battery, meter)
// must match the reference bit-for-bit: the epoch guards have to cut plans
// at every mutation the script throws, or a stale entry diverges the run.
// The sharded variant reruns the property with a tap worker pool so the
// plan path is exercised under TSAN in CI alongside the other shard suites.
#include <gtest/gtest.h>

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "src/base/rng.h"
#include "src/core/syscalls.h"
#include "src/sim/simulator.h"
#include "src/sim/thread_body.h"

namespace cinder {
namespace {

// One scripted mutation, pre-generated so every K replays the identical
// sequence (the Rng is consumed during script construction only).
struct ChurnOp {
  enum Kind { kDeposit, kConsume, kFlipActive, kAttach, kDetach, kSpawn } kind;
  int64_t at_ms;
  uint32_t thread_idx;
  uint32_t reserve_idx;
  Quantity amount;
};

struct ChurnScript {
  int threads = 0;
  int reserves = 0;
  std::vector<Quantity> seed_levels;  // Initial per-reserve funding.
  std::vector<uint32_t> body_kind;    // Per thread: 0 spin, 1 sleeper.
  std::vector<ChurnOp> ops;
};

ChurnScript MakeScript(uint64_t seed) {
  Rng rng(seed);
  ChurnScript s;
  s.threads = 3 + static_cast<int>(rng.UniformU64(5));
  s.reserves = s.threads + static_cast<int>(rng.UniformU64(4));
  for (int r = 0; r < s.reserves; ++r) {
    s.seed_levels.push_back(rng.Bernoulli(0.7)
                                ? static_cast<Quantity>(rng.UniformU64(200000000))
                                : 0);
  }
  for (int t = 0; t < s.threads; ++t) {
    s.body_kind.push_back(rng.Bernoulli(0.25) ? 1 : 0);
  }
  const int n_ops = 24 + static_cast<int>(rng.UniformU64(24));
  for (int i = 0; i < n_ops; ++i) {
    ChurnOp op;
    const uint64_t k = rng.UniformU64(12);
    op.kind = k < 4   ? ChurnOp::kDeposit
              : k < 6 ? ChurnOp::kConsume
              : k < 8 ? ChurnOp::kFlipActive
              : k < 9 ? ChurnOp::kAttach
              : k < 10 ? ChurnOp::kDetach
                       : ChurnOp::kSpawn;
    if (k >= 10 && rng.Bernoulli(0.5)) {
      op.kind = ChurnOp::kDeposit;  // Keep spawns rarer than reserve traffic.
    }
    op.at_ms = 1 + static_cast<int64_t>(rng.UniformU64(990));
    op.thread_idx = static_cast<uint32_t>(rng.UniformU64(s.threads));
    op.reserve_idx = static_cast<uint32_t>(rng.UniformU64(s.reserves));
    op.amount = static_cast<Quantity>(rng.UniformU64(50000000));
    s.ops.push_back(op);
  }
  return s;
}

struct ChurnFingerprint {
  std::vector<Quantity> levels;
  std::vector<int64_t> quanta;
  int64_t battery = 0;
  int64_t true_energy_nj = 0;
  int64_t cpu_meter_nj = 0;
};

ChurnFingerprint RunScript(const ChurnScript& script, uint32_t plan_quanta, int workers) {
  SimConfig cfg;
  cfg.decay_half_life = Duration::Seconds(10);
  cfg.exec.sched_plan_quanta = plan_quanta;
  cfg.exec.tap_workers = workers;
  Simulator sim(cfg);
  Kernel& k = sim.kernel();
  Thread* boot = sim.boot_thread();

  std::vector<ObjectId> reserves;
  for (int r = 0; r < script.reserves; ++r) {
    ObjectId id = ReserveCreate(k, *boot, k.root_container_id(), Label(Level::k1),
                                "r" + std::to_string(r))
                      .value();
    if (script.seed_levels[r] > 0) {
      EXPECT_EQ(ReserveTransfer(k, *boot, sim.battery_reserve_id(), id, script.seed_levels[r]),
                Status::kOk);
    }
    reserves.push_back(id);
  }
  std::vector<ObjectId> threads;
  for (int t = 0; t < script.threads; ++t) {
    auto proc = sim.CreateProcess("t" + std::to_string(t));
    Thread* th = k.LookupTyped<Thread>(proc.thread);
    th->set_active_reserve(reserves[t % reserves.size()]);
    if (script.body_kind[t] == 1) {
      sim.AttachBody(proc.thread, MakeBody([](QuantumContext& ctx) {
                       ctx.thread.SleepUntil(ctx.now + Duration::Millis(23));
                     }));
    } else {
      sim.AttachBody(proc.thread, std::make_unique<SpinBody>());
    }
    threads.push_back(proc.thread);
  }
  // A flowing tap keeps batches moving flow, so plans race batch boundaries.
  EXPECT_EQ(TapSetConstantPower(
                k, *boot,
                TapCreate(k, sim.taps(), *boot, k.root_container_id(),
                          sim.battery_reserve_id(), reserves[0], Label(Level::k1), "feed")
                    .value(),
                Power::Milliwatts(20)),
            Status::kOk);

  for (const ChurnOp& op : script.ops) {
    sim.ScheduleAfter(Duration::Millis(op.at_ms), [&, op] {
      Thread* th = k.LookupTyped<Thread>(threads[op.thread_idx]);
      ObjectId res = reserves[op.reserve_idx];
      switch (op.kind) {
        case ChurnOp::kDeposit:
          (void)ReserveTransfer(k, *boot, sim.battery_reserve_id(), res, op.amount);
          break;
        case ChurnOp::kConsume:
          (void)ReserveConsume(k, *boot, res, op.amount);
          break;
        case ChurnOp::kFlipActive:
          th->set_active_reserve(res);
          break;
        case ChurnOp::kAttach:
          th->AttachReserve(res);
          break;
        case ChurnOp::kDetach:
          th->DetachReserve(res);
          break;
        case ChurnOp::kSpawn: {
          auto proc = sim.CreateProcess("spawn");
          k.LookupTyped<Thread>(proc.thread)->set_active_reserve(res);
          sim.AttachBody(proc.thread, std::make_unique<SpinBody>());
          threads.push_back(proc.thread);
          break;
        }
      }
    });
  }

  sim.Run(Duration::Seconds(1));

  ChurnFingerprint fp;
  for (ObjectId r : reserves) {
    fp.levels.push_back(k.LookupTyped<Reserve>(r)->level());
  }
  for (ObjectId t : threads) {
    const Thread* th = k.LookupTyped<Thread>(t);
    fp.quanta.push_back(th->quanta_run());
    fp.quanta.push_back(th->quanta_denied());
  }
  fp.battery = sim.battery_reserve()->level();
  fp.true_energy_nj = sim.total_true_energy().nj();
  fp.cpu_meter_nj = sim.meter().ForComponent(Component::kCpu).nj();
  return fp;
}

class SchedPlanProperty : public ::testing::TestWithParam<uint64_t> {};

TEST_P(SchedPlanProperty, ChurnedRunsMatchPlanFreeReferenceAtEveryK) {
  const ChurnScript script = MakeScript(GetParam());
  const ChurnFingerprint reference = RunScript(script, 0, 0);
  for (uint32_t plan_quanta : {1u, 4u, 16u, 64u}) {
    const ChurnFingerprint got = RunScript(script, plan_quanta, 0);
    EXPECT_EQ(got.levels, reference.levels) << "seed=" << GetParam() << " K=" << plan_quanta;
    EXPECT_EQ(got.quanta, reference.quanta) << "seed=" << GetParam() << " K=" << plan_quanta;
    EXPECT_EQ(got.battery, reference.battery) << "seed=" << GetParam() << " K=" << plan_quanta;
    EXPECT_EQ(got.true_energy_nj, reference.true_energy_nj)
        << "seed=" << GetParam() << " K=" << plan_quanta;
    EXPECT_EQ(got.cpu_meter_nj, reference.cpu_meter_nj)
        << "seed=" << GetParam() << " K=" << plan_quanta;
  }
}

TEST_P(SchedPlanProperty, ShardedChurnedRunsMatchSerialReference) {
  // Same property with a tap worker pool: the scheduler plan path must stay
  // exact while batches run on real threads (the TSAN-covered variant).
  const ChurnScript script = MakeScript(GetParam() * 7919 + 5);
  const ChurnFingerprint reference = RunScript(script, 0, 0);
  const ChurnFingerprint got = RunScript(script, 64, 2);
  EXPECT_EQ(got.levels, reference.levels) << "seed=" << GetParam();
  EXPECT_EQ(got.quanta, reference.quanta) << "seed=" << GetParam();
  EXPECT_EQ(got.battery, reference.battery) << "seed=" << GetParam();
  EXPECT_EQ(got.true_energy_nj, reference.true_energy_nj) << "seed=" << GetParam();
  EXPECT_EQ(got.cpu_meter_nj, reference.cpu_meter_nj) << "seed=" << GetParam();
}

INSTANTIATE_TEST_SUITE_P(Seeds, SchedPlanProperty, ::testing::Values(3, 17, 41, 97, 131, 257));

}  // namespace
}  // namespace cinder
