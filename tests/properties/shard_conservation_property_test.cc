// Property test: exact conservation survives sharded execution. Random
// multi-component reserve/tap graphs run their batches on a real worker pool
// (so shards genuinely execute concurrently) and the total quantity in the
// system must still be conserved to the nanojoule — decay crossing shard
// boundaries into the battery root included.
#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "src/base/rng.h"
#include "src/core/tap_engine.h"
#include "src/exec/shard_executor.h"

namespace cinder {
namespace {

class ShardConservationProperty : public ::testing::TestWithParam<uint64_t> {};

TEST_P(ShardConservationProperty, RandomShardedGraphsConserveExactly) {
  const uint64_t seed = GetParam();
  Rng rng(seed);
  Kernel k;
  Reserve* battery = k.Create<Reserve>(k.root_container_id(), Label(Level::k1), "battery");
  battery->set_decay_exempt(true);
  battery->Deposit(ToQuantity(Energy::Joules(15000.0)));
  ShardExecutor exec(4);
  TapEngine engine(&k, battery->id());
  engine.EnableSharding(&exec);
  engine.decay().enabled = (seed % 2) == 0;  // Half the cases include decay.
  engine.decay().half_life = Duration::Seconds(60 + static_cast<int64_t>(rng.UniformU64(600)));

  // Several disconnected components, each a small random graph. The battery
  // deliberately takes part in none of them, so decay leakage is always a
  // cross-shard transfer resolved by the merge step.
  const int n_components = 2 + static_cast<int>(rng.UniformU64(5));
  for (int c = 0; c < n_components; ++c) {
    std::vector<Reserve*> reserves;
    const int n_reserves = 2 + static_cast<int>(rng.UniformU64(6));
    for (int i = 0; i < n_reserves; ++i) {
      Reserve* r = k.Create<Reserve>(k.root_container_id(), Label(Level::k1),
                                     "c" + std::to_string(c) + "/r" + std::to_string(i));
      if (rng.Bernoulli(0.6)) {
        r->Deposit(static_cast<Quantity>(rng.UniformU64(1000000000)));
      }
      if (rng.Bernoulli(0.15)) {
        r->set_decay_exempt(true);
      }
      reserves.push_back(r);
    }
    const int n_taps = 1 + static_cast<int>(rng.UniformU64(8));
    for (int i = 0; i < n_taps; ++i) {
      size_t a = rng.UniformU64(reserves.size());
      size_t b = rng.UniformU64(reserves.size());
      if (a == b) {
        continue;
      }
      Tap* t = k.Create<Tap>(k.root_container_id(), Label(Level::k1),
                             "c" + std::to_string(c) + "/t" + std::to_string(i),
                             reserves[a]->id(), reserves[b]->id());
      if (rng.Bernoulli(0.5)) {
        t->SetConstantRate(static_cast<QuantityRate>(rng.UniformU64(300000000)));
      } else {
        t->SetProportionalRate(rng.UniformRange(0.0, 0.8));
      }
      ASSERT_TRUE(engine.Register(t->id()));
    }
  }

  auto total = [&] {
    Quantity sum = 0;
    for (ObjectId id : k.ObjectsOfType(ObjectType::kReserve)) {
      sum += k.LookupTyped<Reserve>(id)->level();
    }
    return sum;
  };

  const Quantity before = total();
  // Irregular batch lengths stress the carry logic on every shard.
  for (int i = 0; i < 1500; ++i) {
    engine.RunBatch(Duration::Micros(1000 + static_cast<int64_t>(rng.UniformU64(30000))));
  }
  EXPECT_EQ(total(), before) << "seed=" << seed;
  EXPECT_GE(engine.shard_count(), 1u);
}

// Same property with the intra-shard range split forced on: one oversized
// random component (hubs with random fan-outs, random constrained pockets)
// runs its pass 1/2 as parallel range tickets on a real pool, and every
// nanojoule must still be accounted for — the fast path's no-clamp proof, the
// deferred shared-destination deposits, and the ordered constrained tail all
// feed the same conservation ledger.
TEST_P(ShardConservationProperty, RangeSplitGraphsConserveExactly) {
  const uint64_t seed = GetParam();
  Rng rng(seed);
  Kernel k;
  Reserve* battery = k.Create<Reserve>(k.root_container_id(), Label(Level::k1), "battery");
  battery->set_decay_exempt(true);
  battery->Deposit(ToQuantity(Energy::Joules(15000.0)));
  ShardExecutor exec(4);
  TapEngine engine(&k, battery->id());
  engine.split().min_entries = 8;
  engine.split().ranges = 2 + static_cast<uint32_t>(rng.UniformU64(7));
  engine.EnableSharding(&exec);
  engine.decay().enabled = (seed % 2) == 0;
  engine.decay().half_life = Duration::Seconds(60 + static_cast<int64_t>(rng.UniformU64(600)));

  // One big component: a pool feeding random hubs, each with a random
  // fan-out. Poor hubs (no deposit) are constrained immediately; shared
  // destinations arise from hubs tapping back into the pool.
  Reserve* pool = k.Create<Reserve>(k.root_container_id(), Label(Level::k1), "pool");
  pool->Deposit(static_cast<Quantity>(rng.UniformU64(4000000000)));
  const int n_hubs = 4 + static_cast<int>(rng.UniformU64(8));
  for (int h = 0; h < n_hubs; ++h) {
    Reserve* hub = k.Create<Reserve>(k.root_container_id(), Label(Level::k1),
                                     "hub" + std::to_string(h));
    if (rng.Bernoulli(0.6)) {
      hub->Deposit(static_cast<Quantity>(rng.UniformU64(2000000000)));
    }
    Tap* feed = k.Create<Tap>(k.root_container_id(), Label(Level::k1),
                              "feed" + std::to_string(h), pool->id(), hub->id());
    feed->SetConstantRate(static_cast<QuantityRate>(rng.UniformU64(300000000)));
    ASSERT_TRUE(engine.Register(feed->id()));
    const int n_leaves = 1 + static_cast<int>(rng.UniformU64(7));
    for (int l = 0; l < n_leaves; ++l) {
      Reserve* leaf = k.Create<Reserve>(
          k.root_container_id(), Label(Level::k1),
          "leaf" + std::to_string(h) + "_" + std::to_string(l));
      Tap* t = k.Create<Tap>(k.root_container_id(), Label(Level::k1),
                             "t" + std::to_string(h) + "_" + std::to_string(l), hub->id(),
                             rng.Bernoulli(0.2) ? pool->id() : leaf->id());
      if (rng.Bernoulli(0.5)) {
        t->SetConstantRate(static_cast<QuantityRate>(rng.UniformU64(400000000)));
      } else {
        t->SetProportionalRate(rng.UniformRange(0.0, 0.8));
      }
      ASSERT_TRUE(engine.Register(t->id()));
    }
  }

  auto total = [&] {
    Quantity sum = 0;
    for (ObjectId id : k.ObjectsOfType(ObjectType::kReserve)) {
      sum += k.LookupTyped<Reserve>(id)->level();
    }
    return sum;
  };

  const Quantity before = total();
  for (int i = 0; i < 1500; ++i) {
    engine.RunBatch(Duration::Micros(1000 + static_cast<int64_t>(rng.UniformU64(30000))));
  }
  EXPECT_EQ(total(), before) << "seed=" << seed;
  // The component must genuinely have run split, or the test proves nothing.
  bool any_split = false;
  for (const auto& s : engine.shard_stats()) {
    any_split = any_split || s.ranges > 1;
  }
  EXPECT_TRUE(any_split) << "seed=" << seed;
}

INSTANTIATE_TEST_SUITE_P(Seeds, ShardConservationProperty,
                         ::testing::Values(3, 7, 12, 23, 42, 57, 91, 137));

}  // namespace
}  // namespace cinder
