// Property test: articulation cuts are invisible. Seeded random caterpillar
// graphs — deep ladder chains with leaf taps hanging off the spine, short
// back-taps that create 2-edge-connected pockets (non-bridges the cut
// selection must step around), random charge so constrained pockets and the
// fused fallback fire unpredictably — run with cutting enabled at several
// worker counts, through mid-run create/delete churn, and must stay
// bit-identical to the plain unsharded engine while conserving every
// nanojoule across every run segment.
#include <gtest/gtest.h>

#include <memory>
#include <string>
#include <vector>

#include "src/base/rng.h"
#include "src/core/tap_engine.h"
#include "src/exec/shard_executor.h"

namespace cinder {
namespace {

struct CutRig {
  Kernel kernel;
  std::unique_ptr<TapEngine> engine;

  CutRig(ShardExecutor* executor, bool sharded, uint32_t cut_threshold) {
    Reserve* b = kernel.Create<Reserve>(kernel.root_container_id(), Label(Level::k1), "battery");
    b->set_decay_exempt(true);
    b->Deposit(ToQuantity(Energy::Joules(20000.0)));
    engine = std::make_unique<TapEngine>(&kernel, b->id());
    engine->decay().enabled = true;
    engine->decay().half_life = Duration::Seconds(45);
    engine->set_cut_threshold(cut_threshold);
    if (sharded) {
      engine->EnableSharding(executor);
    }
  }

  // Every stochastic choice comes from a fresh Rng(seed), so two rigs built
  // with the same seed are object-for-object identical.
  void Build(uint64_t seed) {
    Rng rng(seed);
    Reserve* head = kernel.Create<Reserve>(kernel.root_container_id(), Label(Level::k1), "head");
    head->Deposit(ToQuantity(Energy::Joules(2000.0)));
    std::vector<Reserve*> spine{head};
    const int depth = 24 + static_cast<int>(rng.UniformU64(64));
    for (int i = 0; i < depth; ++i) {
      Reserve* n = kernel.Create<Reserve>(kernel.root_container_id(), Label(Level::k1),
                                          "n" + std::to_string(i));
      if (rng.Bernoulli(0.7)) {
        n->Deposit(static_cast<Quantity>(rng.UniformU64(4000000000)));
      }
      AddTap(spine.back()->id(), n->id(), "c" + std::to_string(i), rng);
      // Leaf taps make the spine a caterpillar; short back-taps close small
      // cycles whose edges are not bridges.
      if (rng.Bernoulli(0.25)) {
        Reserve* leaf = kernel.Create<Reserve>(kernel.root_container_id(), Label(Level::k1),
                                               "l" + std::to_string(i));
        AddTap(n->id(), leaf->id(), "lt" + std::to_string(i), rng);
      }
      if (rng.Bernoulli(0.1) && spine.size() >= 3) {
        AddTap(n->id(), spine[spine.size() - 3]->id(), "bt" + std::to_string(i), rng);
      }
      spine.push_back(n);
    }
    // A second small component so the cut parent is not the whole world.
    Reserve* pool = kernel.Create<Reserve>(kernel.root_container_id(), Label(Level::k1), "pool");
    pool->Deposit(static_cast<Quantity>(rng.UniformU64(3000000000)));
    const int n_apps = 2 + static_cast<int>(rng.UniformU64(4));
    for (int i = 0; i < n_apps; ++i) {
      Reserve* app = kernel.Create<Reserve>(kernel.root_container_id(), Label(Level::k1),
                                            "app" + std::to_string(i));
      AddTap(pool->id(), app->id(), "pt" + std::to_string(i), rng);
    }
  }

  void AddTap(ObjectId src, ObjectId dst, const std::string& name, Rng& rng) {
    Tap* t = kernel.Create<Tap>(kernel.root_container_id(), Label(Level::k1), name, src, dst);
    if (rng.Bernoulli(0.5)) {
      t->SetConstantRate(static_cast<QuantityRate>(rng.UniformU64(300000000)));
    } else {
      t->SetProportionalRate(rng.UniformRange(0.0, 0.5));
    }
    EXPECT_TRUE(engine->Register(t->id()));
  }

  // One churn round, driven by a fresh Rng so every rig mutates identically:
  // new fan-out taps off random existing reserves, then a few tap deletions
  // (taps only — deleting reserves would orphan edges, a different test).
  void Churn(uint64_t seed, int round) {
    Rng rng(seed ^ (0x9e3779b9ULL * static_cast<uint64_t>(round + 1)));
    const auto& reserves = kernel.ObjectsOfType(ObjectType::kReserve);
    const int n_new = 2 + static_cast<int>(rng.UniformU64(6));
    for (int i = 0; i < n_new; ++i) {
      const ObjectId src = reserves[1 + rng.UniformU64(reserves.size() - 1)];
      Reserve* leaf = kernel.Create<Reserve>(
          kernel.root_container_id(), Label(Level::k1),
          "x" + std::to_string(round) + "_" + std::to_string(i));
      AddTap(src, leaf->id(), "xt" + std::to_string(round) + "_" + std::to_string(i), rng);
    }
    const auto& taps = kernel.ObjectsOfType(ObjectType::kTap);
    const int n_del = static_cast<int>(rng.UniformU64(5));
    std::vector<ObjectId> doomed(taps.end() - std::min<size_t>(n_del, taps.size()), taps.end());
    for (ObjectId id : doomed) {
      ASSERT_EQ(kernel.Delete(id), Status::kOk);
    }
  }

  Quantity Total() const {
    Quantity sum = 0;
    for (ObjectId id : kernel.ObjectsOfType(ObjectType::kReserve)) {
      sum += kernel.LookupTyped<Reserve>(id)->level();
    }
    return sum;
  }
};

void ExpectBitIdentical(CutRig& want, CutRig& got, const std::string& label) {
  SCOPED_TRACE(label);
  const auto& want_reserves = want.kernel.ObjectsOfType(ObjectType::kReserve);
  const auto& got_reserves = got.kernel.ObjectsOfType(ObjectType::kReserve);
  ASSERT_EQ(want_reserves.size(), got_reserves.size());
  for (size_t i = 0; i < want_reserves.size(); ++i) {
    ASSERT_EQ(want_reserves[i], got_reserves[i]);
    const Reserve* rw = want.kernel.LookupTyped<Reserve>(want_reserves[i]);
    const Reserve* rg = got.kernel.LookupTyped<Reserve>(got_reserves[i]);
    EXPECT_EQ(rw->level(), rg->level()) << rw->name();
    EXPECT_TRUE(rw->decay_carry() == rg->decay_carry()) << rw->name();
  }
  const auto& want_taps = want.kernel.ObjectsOfType(ObjectType::kTap);
  const auto& got_taps = got.kernel.ObjectsOfType(ObjectType::kTap);
  ASSERT_EQ(want_taps.size(), got_taps.size());
  for (size_t i = 0; i < want_taps.size(); ++i) {
    const Tap* tw = want.kernel.LookupTyped<Tap>(want_taps[i]);
    const Tap* tg = got.kernel.LookupTyped<Tap>(got_taps[i]);
    EXPECT_EQ(tw->total_transferred(), tg->total_transferred()) << tw->name();
    EXPECT_TRUE(tw->carry() == tg->carry()) << tw->name();
  }
  EXPECT_EQ(want.engine->total_tap_flow(), got.engine->total_tap_flow());
  EXPECT_EQ(want.engine->total_decay_flow(), got.engine->total_decay_flow());
}

class ShardCutProperty : public ::testing::TestWithParam<uint64_t> {};

TEST_P(ShardCutProperty, RandomCaterpillarsCutBitIdenticalThroughChurn) {
  const uint64_t seed = GetParam();
  const uint32_t threshold = 6 + static_cast<uint32_t>(Rng(seed).UniformU64(10));

  // One shared irregular-dt schedule: identical for every rig.
  std::vector<int64_t> dts;
  {
    Rng rng(seed * 3 + 1);
    for (int i = 0; i < 900; ++i) {
      dts.push_back(1000 + static_cast<int64_t>(rng.UniformU64(25000)));
    }
  }

  // Each rig runs three 300-batch segments with a churn round between them.
  // Conservation is checked per segment (churn deposits change the total);
  // the deterministic mutation driver keeps all rigs object-identical.
  auto drive = [&](CutRig& rig) {
    for (int round = 0; round < 3; ++round) {
      const Quantity before = rig.Total();
      for (int i = 0; i < 300; ++i) {
        rig.engine->RunBatch(Duration::Micros(dts[round * 300 + i]));
      }
      EXPECT_EQ(rig.Total(), before) << "seed=" << seed << " round=" << round;
      if (round < 2) {
        rig.Churn(seed, round);
      }
    }
  };

  CutRig reference(nullptr, /*sharded=*/false, 0);
  reference.Build(seed);
  drive(reference);

  std::vector<std::unique_ptr<ShardExecutor>> execs;
  for (int workers : {1, 4, 8}) {
    execs.push_back(std::make_unique<ShardExecutor>(workers));
    CutRig cut(execs.back().get(), /*sharded=*/true, threshold);
    cut.Build(seed);
    drive(cut);
    // The spine is far deeper than any threshold in [6, 15], so cuts must
    // genuinely have fired, or the identity check proves nothing.
    EXPECT_GT(cut.engine->boundary_cut_count(), 0u) << "seed=" << seed;
    ExpectBitIdentical(reference, cut,
                       "seed=" + std::to_string(seed) + " workers=" + std::to_string(workers));
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, ShardCutProperty,
                         ::testing::Values(3, 11, 29, 71, 104, 233));

}  // namespace
}  // namespace cinder
