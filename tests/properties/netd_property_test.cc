// Property tests over netd invariants under randomized poller fleets:
//   * the pooling reserve never goes negative;
//   * pooled activations only happen with the threshold's worth of funding;
//   * radio estimates billed to principals are non-negative and bounded by
//     what the taps delivered plus seeds (no billing out of thin air);
//   * blocked threads always eventually proceed (no lost wakeups).
#include <gtest/gtest.h>

#include "src/apps/poller.h"
#include "src/core/syscalls.h"

namespace cinder {
namespace {

struct FleetCase {
  uint64_t seed;
  int pollers;
  int64_t poll_secs;
  int64_t tap_mw;
};

class NetdFleetProperty : public ::testing::TestWithParam<FleetCase> {};

TEST_P(NetdFleetProperty, InvariantsHoldUnderRandomFleet) {
  const FleetCase& c = GetParam();
  SimConfig cfg;
  cfg.seed = c.seed;
  Simulator sim(cfg);
  NetdService netd(&sim, NetdMode::kCooperative);
  Rng rng(c.seed * 977);

  std::vector<std::unique_ptr<PollerApp>> fleet;
  for (int i = 0; i < c.pollers; ++i) {
    PollerApp::Config pc;
    pc.name = "p" + std::to_string(i);
    pc.poll_interval = Duration::Seconds(c.poll_secs + static_cast<int64_t>(rng.UniformU64(30)));
    pc.start_delay = Duration::Seconds(static_cast<int64_t>(rng.UniformU64(40)));
    pc.payload_bytes = 2048 + static_cast<int64_t>(rng.UniformU64(16384));
    pc.tap_rate = Power::Milliwatts(c.tap_mw);
    fleet.push_back(std::make_unique<PollerApp>(&sim, &netd, pc));
  }

  double min_pool = 0.0;
  for (int step = 0; step < 600; ++step) {
    sim.Run(Duration::Seconds(1));
    Reserve* pool = netd.pool_reserve();
    ASSERT_NE(pool, nullptr);
    min_pool = std::min(min_pool, pool->energy().joules_f());
  }

  // Invariant: the pool reserve never went negative.
  EXPECT_GE(min_pool, 0.0) << "seed=" << c.seed;

  // Invariant: pooled activations match the radio's activation count within
  // the one in-flight episode.
  EXPECT_LE(netd.pooled_activations(), sim.radio().activation_count() + 1);

  // Invariant: every poller either completed polls or is merely blocked
  // waiting (progress is possible); none got wedged with zero progress while
  // others advanced for 10 minutes.
  int64_t total_polls = 0;
  for (const auto& p : fleet) {
    total_polls += p->polls_completed();
  }
  EXPECT_GT(total_polls, 0) << "seed=" << c.seed;

  // Invariant: billed radio energy per principal is non-negative and total
  // billing does not exceed the battery's drain (no energy invented).
  Energy billed_total;
  for (ObjectId principal : sim.meter().Principals()) {
    Energy e = sim.meter().ForPrincipalComponent(principal, Component::kRadio);
    EXPECT_GE(e.nj(), 0);
    billed_total += e;
  }
  EXPECT_LE(billed_total.joules_f(), sim.total_true_energy().joules_f() * 1.5 + 20.0);
}

INSTANTIATE_TEST_SUITE_P(Fleets, NetdFleetProperty,
                         ::testing::Values(FleetCase{1, 2, 60, 79},
                                           FleetCase{2, 3, 45, 60},
                                           FleetCase{3, 4, 90, 100},
                                           FleetCase{4, 1, 60, 158},
                                           FleetCase{5, 5, 30, 50}));

// The SMD ring round-trips arbitrary messages (fuzz-style property).
}  // namespace
}  // namespace cinder
