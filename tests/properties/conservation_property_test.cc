// Property test: resource quantities are exactly conserved by tap flows and
// decay, for randomized reserve/tap graphs. Transfers are integer with
// carry, so the invariant holds to the nanojoule regardless of topology,
// rates, or batch cadence.
#include <gtest/gtest.h>

#include "src/base/rng.h"
#include "src/core/syscalls.h"
#include "src/core/tap_engine.h"

namespace cinder {
namespace {

class ConservationProperty : public ::testing::TestWithParam<uint64_t> {};

TEST_P(ConservationProperty, RandomGraphConservesExactly) {
  const uint64_t seed = GetParam();
  Rng rng(seed);
  Kernel k;
  Reserve* battery = k.Create<Reserve>(k.root_container_id(), Label(Level::k1), "battery");
  battery->set_decay_exempt(true);
  battery->Deposit(ToQuantity(Energy::Joules(15000.0)));
  TapEngine engine(&k, battery->id());
  engine.decay().enabled = (seed % 2) == 0;  // Half the cases include decay.
  engine.decay().half_life = Duration::Seconds(60 + static_cast<int64_t>(rng.UniformU64(600)));

  // Random reserves, some pre-seeded.
  std::vector<Reserve*> reserves{battery};
  const int n_reserves = 3 + static_cast<int>(rng.UniformU64(8));
  for (int i = 0; i < n_reserves; ++i) {
    Reserve* r = k.Create<Reserve>(k.root_container_id(), Label(Level::k1),
                                   "r" + std::to_string(i));
    if (rng.Bernoulli(0.5)) {
      r->Deposit(static_cast<Quantity>(rng.UniformU64(1000000000)));
    }
    if (rng.Bernoulli(0.2)) {
      r->set_decay_exempt(true);
    }
    reserves.push_back(r);
  }

  // Random taps, mixing constant and proportional, any direction, possibly
  // cyclic.
  const int n_taps = 2 + static_cast<int>(rng.UniformU64(12));
  for (int i = 0; i < n_taps; ++i) {
    size_t a = rng.UniformU64(reserves.size());
    size_t b = rng.UniformU64(reserves.size());
    if (a == b) {
      continue;
    }
    Tap* t = k.Create<Tap>(k.root_container_id(), Label(Level::k1), "t" + std::to_string(i),
                           reserves[a]->id(), reserves[b]->id());
    if (rng.Bernoulli(0.5)) {
      t->SetConstantRate(static_cast<QuantityRate>(rng.UniformU64(300000000)));
    } else {
      t->SetProportionalRate(rng.UniformRange(0.0, 0.8));
    }
    ASSERT_TRUE(engine.Register(t->id()));
  }

  auto total = [&] {
    Quantity sum = 0;
    for (ObjectId id : k.ObjectsOfType(ObjectType::kReserve)) {
      sum += k.LookupTyped<Reserve>(id)->level();
    }
    return sum;
  };

  const Quantity before = total();
  // Irregular batch lengths stress the carry logic.
  for (int i = 0; i < 2000; ++i) {
    engine.RunBatch(Duration::Micros(1000 + static_cast<int64_t>(rng.UniformU64(30000))));
  }
  EXPECT_EQ(total(), before) << "seed=" << seed;
}

INSTANTIATE_TEST_SUITE_P(Seeds, ConservationProperty,
                         ::testing::Values(1, 2, 3, 5, 8, 13, 21, 34, 55, 89, 144, 233));

class TransferConservation : public ::testing::TestWithParam<uint64_t> {};

TEST_P(TransferConservation, RandomSyscallSequencesConserve) {
  const uint64_t seed = GetParam();
  Rng rng(seed);
  Kernel k;
  Reserve* battery = k.Create<Reserve>(k.root_container_id(), Label(Level::k1), "battery");
  battery->Deposit(ToQuantity(Energy::Joules(100.0)));
  TapEngine engine(&k, battery->id());
  Thread* t = k.Create<Thread>(k.root_container_id(), Label(Level::k1), "t");

  std::vector<ObjectId> ids{battery->id()};
  for (int i = 0; i < 5; ++i) {
    ids.push_back(
        ReserveCreate(k, *t, k.root_container_id(), Label(Level::k1), "r").value());
  }
  auto total = [&] {
    Quantity sum = 0;
    for (ObjectId id : k.ObjectsOfType(ObjectType::kReserve)) {
      sum += k.LookupTyped<Reserve>(id)->level();
    }
    return sum;
  };
  const Quantity before = total();
  for (int i = 0; i < 500; ++i) {
    ObjectId from = ids[rng.UniformU64(ids.size())];
    ObjectId to = ids[rng.UniformU64(ids.size())];
    Quantity amount = static_cast<Quantity>(rng.UniformU64(1000000));
    (void)ReserveTransfer(k, *t, from, to, amount);  // May fail; that is fine.
    if (rng.Bernoulli(0.2)) {
      Result<ObjectId> split = ReserveSplit(k, *t, from, amount / 2, k.root_container_id(),
                                            Label(Level::k1), "s");
      if (split.ok()) {
        ids.push_back(split.value());
      }
    }
  }
  EXPECT_EQ(total(), before) << "seed=" << seed;
}

INSTANTIATE_TEST_SUITE_P(Seeds, TransferConservation, ::testing::Values(7, 11, 19, 23, 31));

}  // namespace
}  // namespace cinder
