// Property test: the measured decay half-life matches the configured one
// across a sweep of half-lives, batch cadences, and starting levels.
#include <gtest/gtest.h>

#include "src/core/tap_engine.h"

namespace cinder {
namespace {

struct DecayCase {
  int64_t half_life_s;
  int64_t batch_ms;
  double start_joules;
};

class DecayProperty : public ::testing::TestWithParam<DecayCase> {};

TEST_P(DecayProperty, MeasuredHalfLifeMatchesConfigured) {
  const DecayCase& c = GetParam();
  Kernel k;
  Reserve* battery = k.Create<Reserve>(k.root_container_id(), Label(Level::k1), "battery");
  battery->set_decay_exempt(true);
  TapEngine engine(&k, battery->id());
  engine.decay().enabled = true;
  engine.decay().half_life = Duration::Seconds(c.half_life_s);

  Reserve* r = k.Create<Reserve>(k.root_container_id(), Label(Level::k1), "r");
  r->Deposit(ToQuantity(Energy::Joules(c.start_joules)));

  const int64_t batches = c.half_life_s * 1000 / c.batch_ms;
  for (int64_t i = 0; i < batches; ++i) {
    engine.RunBatch(Duration::Millis(c.batch_ms));
  }
  EXPECT_NEAR(r->energy().joules_f(), c.start_joules / 2.0, c.start_joules * 0.02);
  // Everything leaked went to the battery: conservation.
  EXPECT_NEAR(battery->energy().joules_f(), c.start_joules / 2.0, c.start_joules * 0.02);
}

INSTANTIATE_TEST_SUITE_P(Sweep, DecayProperty,
                         ::testing::Values(DecayCase{600, 10, 10.0},   // Paper default.
                                           DecayCase{600, 100, 10.0},  // Coarser batches.
                                           DecayCase{60, 10, 1.0},     // Fast decay.
                                           DecayCase{60, 7, 1.0},      // Odd cadence.
                                           DecayCase{1800, 50, 100.0},
                                           DecayCase{300, 10, 0.001}));  // Tiny reserve.

TEST(DecayProperty2, TinyReservesStillDecayViaCarry) {
  // 1 uJ with a 10-minute half-life: per-batch leak is far below 1 nJ, so
  // only the fractional carry makes decay possible at all.
  Kernel k;
  Reserve* battery = k.Create<Reserve>(k.root_container_id(), Label(Level::k1), "battery");
  battery->set_decay_exempt(true);
  TapEngine engine(&k, battery->id());
  engine.decay().enabled = true;
  engine.decay().half_life = Duration::Minutes(10);
  Reserve* r = k.Create<Reserve>(k.root_container_id(), Label(Level::k1), "r");
  r->Deposit(1000);  // 1 uJ.
  for (int i = 0; i < 60000; ++i) {
    engine.RunBatch(Duration::Millis(10));
  }
  EXPECT_NEAR(static_cast<double>(r->level()), 500.0, 25.0);
}

}  // namespace
}  // namespace cinder
