// Property test for the state-bank write-back contract: a banked, sharded
// TapEngine interleaving batches with random mid-run mutations — creates,
// deletes, exempt flips, deposits, withdraws, rate changes — must stay
// bit-identical to a bank-free reference engine that re-resolves everything
// from the kernel objects every batch. The reference implements the seed
// semantics directly (two passes in tap-id order, proportional sharing,
// carries, decay toward the battery) with no caching, no plan, no bank, so
// any snapshot/write-back bug in the real engine shows up as a divergence.
#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <memory>
#include <string>
#include <vector>

#include "src/base/rng.h"
#include "src/core/tap_engine.h"
#include "src/exec/shard_executor.h"

namespace cinder {
namespace {

// The bank-free reference: walks the kernel objects through their public API
// every batch. Deliberately naive — correctness bar, not a hot path.
class ReferenceFlows {
 public:
  ReferenceFlows(Kernel* kernel, ObjectId battery) : kernel_(kernel), battery_(battery) {}

  DecayConfig& decay() { return decay_; }

  void Register(ObjectId tap_id) {
    auto it = std::lower_bound(taps_.begin(), taps_.end(), tap_id);
    if (it == taps_.end() || *it != tap_id) {
      taps_.insert(it, tap_id);
    }
  }
  void Unregister(ObjectId tap_id) {
    auto it = std::lower_bound(taps_.begin(), taps_.end(), tap_id);
    if (it != taps_.end() && *it == tap_id) {
      taps_.erase(it);
    }
  }

  void RunBatch(Duration dt) {
    if (!dt.IsPositive()) {
      return;
    }
    const double dt_s = dt.seconds_f();
    struct Entry {
      Tap* tap;
      Reserve* src;
      Reserve* dst;
      double want;
      size_t group;
    };
    std::vector<Entry> plan;
    std::vector<double> demand;
    std::vector<ObjectId> group_source;
    for (ObjectId id : taps_) {
      Tap* tap = kernel_->LookupTyped<Tap>(id);
      if (tap == nullptr) {
        continue;
      }
      Reserve* src = kernel_->LookupTyped<Reserve>(tap->source());
      Reserve* dst = kernel_->LookupTyped<Reserve>(tap->sink());
      if (src == nullptr || dst == nullptr) {
        continue;
      }
      if (!Kernel::CanUseWith(tap->actor_label(), tap->embedded_privileges(), *src) ||
          !Kernel::CanUseWith(tap->actor_label(), tap->embedded_privileges(), *dst)) {
        continue;
      }
      auto git = std::find(group_source.begin(), group_source.end(), tap->source());
      size_t group = git - group_source.begin();
      if (git == group_source.end()) {
        group_source.push_back(tap->source());
        demand.push_back(0.0);
      }
      plan.push_back({tap, src, dst, 0.0, group});
    }
    // Pass 1: demand. Disabled taps are skipped with their carry untouched.
    for (Entry& e : plan) {
      if (!e.tap->enabled()) {
        e.want = -1.0;
        continue;
      }
      double want = e.tap->carry();
      if (e.tap->tap_type() == TapType::kConstant) {
        want += static_cast<double>(e.tap->rate_per_sec()) * dt_s;
      } else {
        const Quantity level = e.src->level() > 0 ? e.src->level() : 0;
        want += static_cast<double>(level) * e.tap->fraction_per_sec() * dt_s;
      }
      e.want = want;
      demand[e.group] += want;
    }
    // Pass 2: proportional share of whatever is available, tap-id order.
    for (Entry& e : plan) {
      if (e.want < 0.0) {
        continue;
      }
      const double avail = e.src->level() > 0 ? static_cast<double>(e.src->level()) : 0.0;
      double& d = demand[e.group];
      const double scale = (d > avail && d > 0.0) ? avail / d : 1.0;
      const double granted = e.want * scale;
      d -= e.want;
      auto whole = static_cast<Quantity>(granted);
      e.tap->set_carry(granted - static_cast<double>(whole));
      if (whole <= 0) {
        continue;
      }
      const Quantity moved = e.src->Withdraw(whole);
      if (moved > 0) {
        e.dst->Deposit(moved);
        e.tap->AddTransferred(moved);
      }
    }
    // Decay: every non-exempt, non-empty energy reserve leaks to the battery.
    if (!decay_.enabled) {
      return;
    }
    const double frac = 1.0 - std::exp2(-dt_s / decay_.half_life.seconds_f());
    Quantity leaked = 0;
    for (ObjectId id : kernel_->ObjectsOfType(ObjectType::kReserve)) {
      Reserve* r = kernel_->LookupTyped<Reserve>(id);
      if (id == battery_ || r->kind() != ResourceKind::kEnergy || r->decay_exempt() ||
          r->level() <= 0) {
        continue;
      }
      double want = r->decay_carry() + static_cast<double>(r->level()) * frac;
      auto whole = static_cast<Quantity>(want);
      r->set_decay_carry(want - static_cast<double>(whole));
      if (whole > 0) {
        leaked += r->Withdraw(whole);
      }
    }
    if (leaked > 0) {
      if (Reserve* battery = kernel_->LookupTyped<Reserve>(battery_); battery != nullptr) {
        battery->Deposit(leaked);
      }
    }
  }

 private:
  Kernel* kernel_;
  ObjectId battery_;
  DecayConfig decay_;
  std::vector<ObjectId> taps_;
};

// One side of the twin setup: a kernel plus either the real (banked, sharded)
// engine or the reference. Ids line up across twins because every mutation is
// applied to both in the same order.
struct Side {
  Kernel kernel;
  ObjectId battery = kInvalidObjectId;
  std::unique_ptr<TapEngine> engine;        // Real side only.
  std::unique_ptr<ReferenceFlows> reference;  // Reference side only.

  explicit Side(ShardExecutor* executor) {
    Reserve* b = kernel.Create<Reserve>(kernel.root_container_id(), Label(Level::k1), "battery");
    b->set_decay_exempt(true);
    b->Deposit(ToQuantity(Energy::Joules(20000.0)));
    battery = b->id();
    if (executor != nullptr) {
      engine = std::make_unique<TapEngine>(&kernel, battery);
      engine->decay().enabled = true;
      engine->decay().half_life = Duration::Seconds(45);
      engine->EnableSharding(executor);
    } else {
      reference = std::make_unique<ReferenceFlows>(&kernel, battery);
      reference->decay().enabled = true;
      reference->decay().half_life = Duration::Seconds(45);
    }
  }

  void RunBatch(Duration dt) {
    if (engine != nullptr) {
      engine->RunBatch(dt);
    } else {
      reference->RunBatch(dt);
    }
  }
};

class BankWritebackProperty : public ::testing::TestWithParam<std::tuple<int, uint64_t>> {};

TEST_P(BankWritebackProperty, BankedEngineMatchesBankFreeReferenceBitForBit) {
  const int workers = std::get<0>(GetParam());
  const uint64_t seed = std::get<1>(GetParam());
  Rng rng(seed);
  ShardExecutor exec(workers);
  Side real(&exec);
  Side ref(nullptr);

  // Live object pools, same order on both sides (ids are identical since both
  // kernels see the same creation sequence).
  std::vector<ObjectId> reserves;
  std::vector<ObjectId> taps;

  auto create_reserve = [&] {
    const std::string name = "r" + std::to_string(reserves.size());
    Reserve* a = real.kernel.Create<Reserve>(real.kernel.root_container_id(), Label(Level::k1),
                                             name);
    Reserve* b = ref.kernel.Create<Reserve>(ref.kernel.root_container_id(), Label(Level::k1),
                                            name);
    ASSERT_EQ(a->id(), b->id());
    const auto amount = static_cast<Quantity>(rng.UniformU64(2000000000));
    a->Deposit(amount);
    b->Deposit(amount);
    reserves.push_back(a->id());
  };
  auto create_tap = [&] {
    if (reserves.size() < 2) {
      return;
    }
    const size_t ia = rng.UniformU64(reserves.size());
    const size_t ib = rng.UniformU64(reserves.size());
    if (ia == ib) {
      return;
    }
    const std::string name = "t" + std::to_string(taps.size());
    Tap* a = real.kernel.Create<Tap>(real.kernel.root_container_id(), Label(Level::k1), name,
                                     reserves[ia], reserves[ib]);
    Tap* b = ref.kernel.Create<Tap>(ref.kernel.root_container_id(), Label(Level::k1), name,
                                    reserves[ia], reserves[ib]);
    ASSERT_EQ(a->id(), b->id());
    if (rng.Bernoulli(0.5)) {
      const auto rate = static_cast<QuantityRate>(rng.UniformU64(400000000));
      a->SetConstantRate(rate);
      b->SetConstantRate(rate);
    } else {
      const double frac = rng.UniformRange(0.0, 0.7);
      a->SetProportionalRate(frac);
      b->SetProportionalRate(frac);
    }
    ASSERT_TRUE(real.engine->Register(a->id()));
    ref.reference->Register(b->id());
    taps.push_back(a->id());
  };

  // Seed topology: a handful of components.
  for (int i = 0; i < 12; ++i) {
    create_reserve();
  }
  for (int i = 0; i < 10; ++i) {
    create_tap();
  }

  auto expect_identical = [&](int round) {
    SCOPED_TRACE("workers=" + std::to_string(workers) + " seed=" + std::to_string(seed) +
                 " round=" + std::to_string(round));
    const auto& want_ids = ref.kernel.ObjectsOfType(ObjectType::kReserve);
    const auto& got_ids = real.kernel.ObjectsOfType(ObjectType::kReserve);
    ASSERT_EQ(want_ids.size(), got_ids.size());
    for (size_t i = 0; i < want_ids.size(); ++i) {
      ASSERT_EQ(want_ids[i], got_ids[i]);
      const Reserve* w = ref.kernel.LookupTyped<Reserve>(want_ids[i]);
      const Reserve* g = real.kernel.LookupTyped<Reserve>(got_ids[i]);
      EXPECT_EQ(w->level(), g->level()) << w->name();
      EXPECT_EQ(w->total_deposited(), g->total_deposited()) << w->name();
      EXPECT_EQ(w->total_consumed(), g->total_consumed()) << w->name();
      EXPECT_TRUE(w->decay_carry() == g->decay_carry()) << w->name();
    }
    const auto& want_taps = ref.kernel.ObjectsOfType(ObjectType::kTap);
    const auto& got_taps = real.kernel.ObjectsOfType(ObjectType::kTap);
    ASSERT_EQ(want_taps.size(), got_taps.size());
    for (size_t i = 0; i < want_taps.size(); ++i) {
      const Tap* w = ref.kernel.LookupTyped<Tap>(want_taps[i]);
      const Tap* g = real.kernel.LookupTyped<Tap>(got_taps[i]);
      EXPECT_EQ(w->total_transferred(), g->total_transferred()) << w->name();
      EXPECT_TRUE(w->carry() == g->carry()) << w->name();
    }
  };

  for (int round = 0; round < 50; ++round) {
    // A burst of batches with irregular durations.
    const int batches = 5 + static_cast<int>(rng.UniformU64(20));
    for (int i = 0; i < batches; ++i) {
      const Duration dt = Duration::Micros(1000 + static_cast<int64_t>(rng.UniformU64(25000)));
      real.RunBatch(dt);
      ref.RunBatch(dt);
    }
    // One random mutation, applied to both sides. Deposits, withdraws, rate
    // and exempt flips happen *mid-epoch* — no kernel mutation — so they hit
    // the bank write-through path; creates and deletes force a full
    // write-back + re-snapshot.
    const uint64_t op = rng.UniformU64(8);
    switch (op) {
      case 0:
        create_reserve();
        break;
      case 1:
        create_tap();
        break;
      case 2: {  // Delete a tap.
        if (!taps.empty()) {
          const size_t i = rng.UniformU64(taps.size());
          ASSERT_EQ(real.kernel.Delete(taps[i]), Status::kOk);
          ASSERT_EQ(ref.kernel.Delete(taps[i]), Status::kOk);
          ref.reference->Unregister(taps[i]);
          taps.erase(taps.begin() + i);
        }
        break;
      }
      case 3: {  // Delete a reserve (taps touching it turn inert).
        if (reserves.size() > 4) {
          const size_t i = rng.UniformU64(reserves.size());
          ASSERT_EQ(real.kernel.Delete(reserves[i]), Status::kOk);
          ASSERT_EQ(ref.kernel.Delete(reserves[i]), Status::kOk);
          reserves.erase(reserves.begin() + i);
        }
        break;
      }
      case 4: {  // Exempt flip.
        if (!reserves.empty()) {
          const size_t i = rng.UniformU64(reserves.size());
          Reserve* a = real.kernel.LookupTyped<Reserve>(reserves[i]);
          Reserve* b = ref.kernel.LookupTyped<Reserve>(reserves[i]);
          const bool v = !a->decay_exempt();
          a->set_decay_exempt(v);
          b->set_decay_exempt(v);
        }
        break;
      }
      case 5: {  // Deposit.
        if (!reserves.empty()) {
          const size_t i = rng.UniformU64(reserves.size());
          const auto amount = static_cast<Quantity>(rng.UniformU64(500000000));
          real.kernel.LookupTyped<Reserve>(reserves[i])->Deposit(amount);
          ref.kernel.LookupTyped<Reserve>(reserves[i])->Deposit(amount);
        }
        break;
      }
      case 6: {  // Withdraw (possibly draining to empty).
        if (!reserves.empty()) {
          const size_t i = rng.UniformU64(reserves.size());
          Reserve* a = real.kernel.LookupTyped<Reserve>(reserves[i]);
          Reserve* b = ref.kernel.LookupTyped<Reserve>(reserves[i]);
          const Quantity amount = rng.Bernoulli(0.3)
                                      ? a->level()
                                      : static_cast<Quantity>(rng.UniformU64(300000000));
          EXPECT_EQ(a->Withdraw(amount), b->Withdraw(amount));
        }
        break;
      }
      case 7: {  // Rate change on a live tap (mid-epoch, mirrored via bank).
        if (!taps.empty()) {
          const size_t i = rng.UniformU64(taps.size());
          Tap* a = real.kernel.LookupTyped<Tap>(taps[i]);
          Tap* b = ref.kernel.LookupTyped<Tap>(taps[i]);
          if (rng.Bernoulli(0.5)) {
            const auto rate = static_cast<QuantityRate>(rng.UniformU64(300000000));
            a->SetConstantRate(rate);
            b->SetConstantRate(rate);
          } else {
            const bool v = !a->enabled();
            a->set_enabled(v);
            b->set_enabled(v);
          }
        }
        break;
      }
      default:
        break;
    }
    expect_identical(round);
  }
}

INSTANTIATE_TEST_SUITE_P(WorkersAndSeeds, BankWritebackProperty,
                         ::testing::Combine(::testing::Values(1, 2, 8),
                                            ::testing::Values(11u, 29u)));

}  // namespace
}  // namespace cinder
