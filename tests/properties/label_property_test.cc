// Property tests over randomized labels: FlowsTo must behave as a preorder
// (reflexive, transitive) and respond monotonically to privileges.
#include <gtest/gtest.h>

#include "src/base/rng.h"
#include "src/histar/label.h"

namespace cinder {
namespace {

Label RandomLabel(Rng& rng) {
  Label l(static_cast<Level>(rng.UniformU64(4)));
  const int n = static_cast<int>(rng.UniformU64(5));
  for (int i = 0; i < n; ++i) {
    l.Set(rng.UniformU64(6) + 1, static_cast<Level>(rng.UniformU64(4)));
  }
  return l;
}

CategorySet RandomPrivs(Rng& rng) {
  CategorySet s;
  const int n = static_cast<int>(rng.UniformU64(4));
  for (int i = 0; i < n; ++i) {
    s.Add(rng.UniformU64(6) + 1);
  }
  return s;
}

class LabelProperty : public ::testing::TestWithParam<uint64_t> {};

TEST_P(LabelProperty, Reflexive) {
  Rng rng(GetParam());
  for (int i = 0; i < 200; ++i) {
    Label l = RandomLabel(rng);
    CategorySet p = RandomPrivs(rng);
    EXPECT_TRUE(Label::FlowsTo(l, l, p)) << l.ToString();
  }
}

TEST_P(LabelProperty, Transitive) {
  Rng rng(GetParam() * 31 + 7);
  for (int i = 0; i < 500; ++i) {
    Label a = RandomLabel(rng);
    Label b = RandomLabel(rng);
    Label c = RandomLabel(rng);
    CategorySet p = RandomPrivs(rng);
    if (Label::FlowsTo(a, b, p) && Label::FlowsTo(b, c, p)) {
      EXPECT_TRUE(Label::FlowsTo(a, c, p))
          << a.ToString() << " -> " << b.ToString() << " -> " << c.ToString();
    }
  }
}

TEST_P(LabelProperty, PrivilegesAreMonotone) {
  // Adding privileges can only enable more flows, never fewer.
  Rng rng(GetParam() * 17 + 3);
  for (int i = 0; i < 500; ++i) {
    Label a = RandomLabel(rng);
    Label b = RandomLabel(rng);
    CategorySet p = RandomPrivs(rng);
    CategorySet more = p;
    more.Add(rng.UniformU64(6) + 1);
    if (Label::FlowsTo(a, b, p)) {
      EXPECT_TRUE(Label::FlowsTo(a, b, more));
    }
  }
}

TEST_P(LabelProperty, OwningEveryCategoryStillRespectsDefaults) {
  // Privileges are per-category; they never bypass the default-level
  // comparison (which covers infinitely many categories).
  Rng rng(GetParam() * 13 + 1);
  CategorySet all;
  for (Category c = 1; c <= 6; ++c) {
    all.Add(c);
  }
  for (int i = 0; i < 200; ++i) {
    Label a = RandomLabel(rng);
    Label b = RandomLabel(rng);
    if (static_cast<int>(a.default_level()) > static_cast<int>(b.default_level())) {
      EXPECT_FALSE(Label::FlowsTo(a, b, all));
    } else {
      EXPECT_TRUE(Label::FlowsTo(a, b, all));
    }
  }
}

TEST_P(LabelProperty, ObserveModifySymmetry) {
  // CanUse(a, obj) == FlowsTo both ways; check it degenerates to equality
  // up to owned categories.
  Rng rng(GetParam() * 41 + 11);
  for (int i = 0; i < 200; ++i) {
    Label a = RandomLabel(rng);
    Label b = RandomLabel(rng);
    CategorySet none;
    if (Label::FlowsTo(a, b, none) && Label::FlowsTo(b, a, none)) {
      // Pointwise equal on defaults and all mentioned categories.
      EXPECT_EQ(a.default_level(), b.default_level());
      for (const auto& [c, lvl] : a.exceptions()) {
        (void)lvl;
        EXPECT_EQ(a.Get(c), b.Get(c));
      }
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, LabelProperty, ::testing::Values(1, 2, 3, 4, 5, 6, 7, 8));

}  // namespace
}  // namespace cinder
