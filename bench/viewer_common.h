// Shared driver for the Figure 10/11 image-viewer benches.
#pragma once

#include "bench/bench_util.h"
#include "src/apps/image_viewer.h"

namespace cinder {

inline void RunViewerBench(bool adaptive) {
  SimConfig sim_cfg;
  sim_cfg.seed = 42;
  Simulator sim(sim_cfg);
  ImageViewerApp::Config cfg;
  cfg.adaptive = adaptive;
  ImageViewerApp viewer(&sim, cfg);
  sim.Run(Duration::Seconds(3600));

  PrintSeries("download reserve level (uJ, 1 s samples, rebinned to 10 s)",
              viewer.reserve_trace(), Duration::Seconds(10));

  TableWriter t("per-image transfer");
  t.SetColumns({"image", "t_complete_s", "KiB", "quality"});
  for (size_t i = 0; i < viewer.images().size(); ++i) {
    const auto& img = viewer.images()[i];
    t.AddRow({std::to_string(i + 1), TableWriter::Num(img.completed.seconds_f(), 0),
              TableWriter::Num(static_cast<double>(img.bytes) / 1024.0, 0),
              TableWriter::Num(img.quality, 2)});
  }
  t.Print();

  std::printf("summary: done=%s finish_s=%.0f images=%d total_MiB=%.1f stall_quanta=%lld "
              "reserve_min_uJ=%.0f\n",
              viewer.Done() ? "yes" : "no", viewer.finished_at().seconds_f(),
              viewer.images_completed(),
              static_cast<double>(viewer.total_bytes()) / (1024.0 * 1024.0),
              static_cast<long long>(viewer.stall_quanta()),
              viewer.reserve_trace().MinValue());
}

}  // namespace cinder
