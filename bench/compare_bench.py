#!/usr/bin/env python3
"""Compares two google-benchmark JSON files across PRs.

Prints a ratio table for every benchmark present in both files and exits
non-zero if any --gate benchmark regressed by more than --max-regression
(relative real_time increase). Non-gated benchmarks only warn: micro numbers
on shared CI runners are noisy, so the hard gate is reserved for the
benchmarks we explicitly track (BM_TapBatch/512 per the roadmap).

Usage:
  compare_bench.py --baseline OLD.json --current NEW.json \
      --gate BM_TapBatch/512 [--gate ...] [--max-regression 0.20]
"""

import argparse
import json
import sys


def load_times(path):
    with open(path) as f:
        data = json.load(f)
    times = {}
    for b in data.get("benchmarks", []):
        if b.get("run_type", "iteration") != "iteration":
            continue  # Skip aggregates (mean/median/stddev).
        times[b["name"]] = (float(b["real_time"]), b.get("time_unit", "ns"))
    return times


def main():
    ap = argparse.ArgumentParser()
    ap.add_argument("--baseline", required=True)
    ap.add_argument("--current", required=True)
    ap.add_argument("--gate", action="append", default=[],
                    help="benchmark name that hard-fails on regression")
    ap.add_argument("--max-regression", type=float, default=0.20,
                    help="allowed relative real_time increase for gated benchmarks")
    ap.add_argument("--warn-only", action="store_true",
                    help="report gate violations but exit 0 (for baselines from "
                         "a different machine, where absolute times don't compare)")
    args = ap.parse_args()

    old = load_times(args.baseline)
    new = load_times(args.current)
    common = sorted(set(old) & set(new))
    if not common:
        # With gates requested, an empty intersection means the gate silently
        # disarmed (malformed baseline, crashed bench run) — that must fail.
        if args.gate:
            print("compare_bench: no common benchmarks but gates requested; "
                  "refusing to pass", file=sys.stderr)
            return 0 if args.warn_only else 1
        print("compare_bench: no common benchmarks; skipping comparison")
        return 0

    width = max(len(n) for n in common)
    print(f"{'benchmark':<{width}}  {'baseline':>12}  {'current':>12}  {'ratio':>7}")
    failures = []
    for name in common:
        (old_t, old_u), (new_t, new_u) = old[name], new[name]
        if old_u != new_u:
            # Raw times in different units are not comparable; a silent 1000x
            # ratio would make the gate fire (or pass) spuriously.
            print(f"{name:<{width}}  time_unit changed {old_u} -> {new_u}; not comparable")
            if name in args.gate:
                failures.append((name, float("nan")))
            continue
        ratio = new_t / old_t if old_t > 0 else float("inf")
        flag = ""
        if ratio > 1.0 + args.max_regression:
            if name in args.gate:
                flag = "  FAIL"
                failures.append((name, ratio))
            else:
                flag = "  (regressed; not gated)"
        print(f"{name:<{width}}  {old_t:>12.1f}  {new_t:>12.1f}  {ratio:>6.2f}x{flag}")

    # A gate missing from the *current* run means a rename or a truncated run
    # disarmed the CI contract: fail loudly. A gate present in the current run
    # but absent from the baseline is a freshly added benchmark — its first
    # run IS the baseline, so warn and let the gate arm on the next compare.
    missing_current = [g for g in args.gate if g not in new]
    for g in missing_current:
        print(f"compare_bench: gated benchmark {g} missing from current run",
              file=sys.stderr)
    for g in args.gate:
        if g in new and g not in old:
            print(f"compare_bench: gated benchmark {g} has no baseline yet "
                  f"(new benchmark); gate arms next run", file=sys.stderr)
    if missing_current and not args.warn_only:
        return 1

    if failures:
        for name, ratio in failures:
            print(f"compare_bench: {name} regressed {ratio:.2f}x "
                  f"(> {1.0 + args.max_regression:.2f}x allowed)", file=sys.stderr)
        if args.warn_only:
            print("compare_bench: --warn-only set; not failing", file=sys.stderr)
            return 0
        return 1
    print("compare_bench: gated benchmarks within threshold")
    return 0


if __name__ == "__main__":
    sys.exit(main())
