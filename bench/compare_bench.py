#!/usr/bin/env python3
"""Compares two google-benchmark JSON files across PRs.

Prints a ratio table for every benchmark present in both files and exits
non-zero if any --gate benchmark regressed by more than --max-regression
(relative real_time increase). Non-gated benchmarks only warn: micro numbers
on shared CI runners are noisy, so the hard gate is reserved for the
benchmarks we explicitly track (BM_TapBatch/512 per the roadmap).

Also supports within-run ratio gates (--relative-gate NAME:BASE:MAX): the
gate fails when NAME's real_time exceeds BASE's by more than MAX (both taken
from the *current* file, so the comparison is machine-independent and stays
a hard gate even under --warn-only). This is how CI holds the telemetry-on
tap batch (BM_TapBatchTelemetry/32768) within 2% of the telemetry-off one.
With only relative gates to check, --baseline may be omitted.

Usage:
  compare_bench.py --baseline OLD.json --current NEW.json \
      --gate BM_TapBatch/512 [--gate ...] [--max-regression 0.20]
  compare_bench.py --current NEW.json \
      --relative-gate BM_TapBatchTelemetry/32768:BM_TapBatch/32768:0.02
"""

import argparse
import json
import sys


def load_times(path, field="real_time"):
    """Maps benchmark name -> (time, unit) for the given time field.

    When a run used --benchmark_repetitions, the median aggregate is
    preferred over any single repetition: gate decisions on one iteration
    of a noisy benchmark are coin flips, medians are not. The aggregate is
    keyed by its run_name (the plain benchmark name) so gates keyed on
    plain names work with and without repetitions.
    """
    with open(path) as f:
        data = json.load(f)
    times = {}
    medians = {}
    for b in data.get("benchmarks", []):
        run_type = b.get("run_type", "iteration")
        entry = (float(b[field]), b.get("time_unit", "ns"))
        if run_type == "aggregate":
            if b.get("aggregate_name") == "median":
                medians[b.get("run_name", b["name"])] = entry
            continue
        times[b["name"]] = entry
    times.update(medians)
    return times


def check_relative_gates(gates, times):
    """Within-run ratio gates: NAME:BASE:MAX_OVERHEAD against one file."""
    ok = True
    for spec in gates:
        parts = spec.rsplit(":", 2)
        if len(parts) != 3:
            print(f"compare_bench: bad --relative-gate {spec!r} "
                  f"(want NAME:BASE:MAX_OVERHEAD)", file=sys.stderr)
            ok = False
            continue
        name, base, budget = parts[0], parts[1], float(parts[2])
        if name not in times or base not in times:
            missing = name if name not in times else base
            print(f"compare_bench: relative gate {spec}: {missing} missing "
                  f"from current run", file=sys.stderr)
            ok = False
            continue
        (t, u), (base_t, base_u) = times[name], times[base]
        if u != base_u or base_t <= 0:
            print(f"compare_bench: relative gate {spec}: not comparable",
                  file=sys.stderr)
            ok = False
            continue
        overhead = t / base_t - 1.0
        verdict = "OK" if overhead <= budget else "FAIL"
        print(f"relative gate: {name} vs {base}: {overhead:+.2%} overhead "
              f"(allowed {budget:.0%}) {verdict}")
        ok = ok and overhead <= budget
    return ok


def main():
    ap = argparse.ArgumentParser()
    ap.add_argument("--baseline",
                    help="prior run to diff against; optional when only "
                         "--relative-gate checks are wanted")
    ap.add_argument("--current", required=True)
    ap.add_argument("--gate", action="append", default=[],
                    help="benchmark name that hard-fails on regression")
    ap.add_argument("--max-regression", type=float, default=0.20,
                    help="allowed relative real_time increase for gated benchmarks")
    ap.add_argument("--relative-gate", action="append", default=[],
                    metavar="NAME:BASE:MAX_OVERHEAD",
                    help="within-run ratio gate on the current file; immune "
                         "to --warn-only (same machine by construction)")
    ap.add_argument("--warn-only", action="store_true",
                    help="report gate violations but exit 0 (for baselines from "
                         "a different machine, where absolute times don't compare)")
    args = ap.parse_args()

    new = load_times(args.current)
    # Relative gates compare cpu_time, not real_time: on shared 1-vCPU
    # runners, real_time includes preemption by unrelated processes, which
    # dwarfs the <2% overheads these gates police. cpu_time does not.
    relative_ok = check_relative_gates(
        args.relative_gate, load_times(args.current, field="cpu_time"))

    if args.baseline is None:
        if args.gate:
            print("compare_bench: --gate requires --baseline", file=sys.stderr)
            return 1
        return 0 if relative_ok else 1

    old = load_times(args.baseline)
    common = sorted(set(old) & set(new))
    if not common:
        # With gates requested, an empty intersection means the gate silently
        # disarmed (malformed baseline, crashed bench run) — that must fail.
        if args.gate:
            print("compare_bench: no common benchmarks but gates requested; "
                  "refusing to pass", file=sys.stderr)
            if not args.warn_only:
                return 1
        else:
            print("compare_bench: no common benchmarks; skipping comparison")
        return 0 if relative_ok else 1

    width = max(len(n) for n in common)
    print(f"{'benchmark':<{width}}  {'baseline':>12}  {'current':>12}  {'ratio':>7}")
    failures = []
    for name in common:
        (old_t, old_u), (new_t, new_u) = old[name], new[name]
        if old_u != new_u:
            # Raw times in different units are not comparable; a silent 1000x
            # ratio would make the gate fire (or pass) spuriously.
            print(f"{name:<{width}}  time_unit changed {old_u} -> {new_u}; not comparable")
            if name in args.gate:
                failures.append((name, float("nan")))
            continue
        ratio = new_t / old_t if old_t > 0 else float("inf")
        flag = ""
        if ratio > 1.0 + args.max_regression:
            if name in args.gate:
                flag = "  FAIL"
                failures.append((name, ratio))
            else:
                flag = "  (regressed; not gated)"
        print(f"{name:<{width}}  {old_t:>12.1f}  {new_t:>12.1f}  {ratio:>6.2f}x{flag}")

    # A gate missing from the *current* run means a rename or a truncated run
    # disarmed the CI contract: fail loudly. A gate present in the current run
    # but absent from the baseline is a freshly added benchmark — its first
    # run IS the baseline, so warn and let the gate arm on the next compare.
    missing_current = [g for g in args.gate if g not in new]
    for g in missing_current:
        print(f"compare_bench: gated benchmark {g} missing from current run",
              file=sys.stderr)
    for g in args.gate:
        if g in new and g not in old:
            print(f"compare_bench: gated benchmark {g} has no baseline yet "
                  f"(new benchmark); gate arms next run", file=sys.stderr)
    if missing_current and not args.warn_only:
        return 1

    if failures:
        for name, ratio in failures:
            print(f"compare_bench: {name} regressed {ratio:.2f}x "
                  f"(> {1.0 + args.max_regression:.2f}x allowed)", file=sys.stderr)
        if args.warn_only:
            print("compare_bench: --warn-only set; not failing", file=sys.stderr)
            return 0 if relative_ok else 1
        return 1
    print("compare_bench: gated benchmarks within threshold")
    return 0 if relative_ok else 1


if __name__ == "__main__":
    sys.exit(main())
