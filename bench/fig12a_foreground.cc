// Figure 12a: task manager with the foreground tap at exactly the CPU's
// 137 mW.
//
// Paper result: the two background spinners share 14 mW; the foreground app
// jumps to the full 137 mW during its window and returns to the background
// share immediately after demotion (nothing to hoard).
#include "bench/fig12_common.h"

int main() {
  cinder::PrintHeader("Figure 12a — foreground tap = 137 mW (exact CPU cost)",
                      "fg app at 137 mW during its window; clean return to 7 mW after");
  cinder::RunFig12(cinder::Power::Milliwatts(137));
  return 0;
}
