// Figure 14: the netd pooling reserve level over time during the cooperative
// run.
//
// Paper result: a sawtooth — the two pollers' contributions fill the reserve
// to 125% of the 9.5 J activation estimate; each activation debits 9.5 J, so
// the reserve never empties to 0.
#include "bench/bench_util.h"
#include "src/apps/scenarios.h"

int main() {
  using namespace cinder;
  PrintHeader("Figure 14 — netd reserve level over time (cooperative run)",
              "sawtooth up to ~11.9 J, debited 9.5 J per activation, never 0");
  CooperationConfig cfg;
  cfg.mode = NetdMode::kCooperative;
  CooperationResult r = RunCooperationScenario(cfg);
  PrintSeries("netd reserve (J, rebinned to 5 s)", r.netd_reserve_j, Duration::Seconds(5));
  double floor_after_settle = 1e9;
  double peak = 0.0;
  for (size_t i = 0; i < r.netd_reserve_j.size(); ++i) {
    peak = std::max(peak, r.netd_reserve_j[i].value);
    if (r.netd_reserve_j[i].time.seconds_f() > 200.0) {
      floor_after_settle = std::min(floor_after_settle, r.netd_reserve_j[i].value);
    }
  }
  std::printf("summary: peak=%.1f J (paper ~11.9), post-settle floor=%.1f J (paper >0), "
              "activations=%lld\n",
              peak, floor_after_settle, static_cast<long long>(r.activations));
  return 0;
}
