// Ablation (paper section 5.2.2): the shipped anti-hoarding design (global
// decay) versus the stricter alternative the paper sketches (reserve_clone +
// restricted transfers), versus no defense.
//
// Attack: a malicious app with a 100 mW tap repeatedly mints fresh reserves
// and shuttles its income into them, trying to escape taxation.
#include "bench/bench_util.h"
#include "src/core/syscalls.h"
#include "src/sim/simulator.h"

namespace cinder {
namespace {

enum class Defense { kNone, kDecay, kStrictClone };

double HoardAfter(Defense defense, Duration horizon) {
  SimConfig cfg;
  cfg.decay_enabled = defense == Defense::kDecay;
  Simulator sim(cfg);
  Kernel& k = sim.kernel();
  Thread* boot = sim.boot_thread();
  Thread* sys = k.Create<Thread>(k.root_container_id(), Label(Level::k1), "sys");
  Category sys_cat = k.categories().Allocate();
  sys->GrantPrivilege(sys_cat);

  auto proc = sim.CreateProcess("evil");
  Thread* evil = k.LookupTyped<Thread>(proc.thread);
  ObjectId income =
      ReserveCreate(k, *boot, proc.container, Label(Level::k1), "income").value();
  ObjectId tap = TapCreate(k, sim.taps(), *boot, proc.container, sim.battery_reserve_id(),
                           income, Label(Level::k1), "tap")
                     .value();
  (void)TapSetConstantPower(k, *boot, tap, Power::Milliwatts(100));

  if (defense == Defense::kStrictClone) {
    // The system imposes a locked 0.00116/s drain (the 10-min half-life
    // expressed as a backward tap) on the income reserve.
    Label locked(Level::k1);
    locked.Set(sys_cat, Level::k0);
    ObjectId tax = TapCreate(k, sim.taps(), *sys, k.root_container_id(), income,
                             sim.battery_reserve_id(), locked, "tax")
                       .value();
    (void)TapSetProportionalRate(k, *sys, tax, 0.0011552453);  // ln2 / 600 s.
  }

  // The attack: every 10 s, mint a new stash reserve and move everything in.
  std::vector<ObjectId> stashes{income};
  std::function<void()> shuttle = [&] {
    ObjectId target;
    if (defense == Defense::kStrictClone) {
      // reserve_create is replaced by reserve_clone: the stash inherits the
      // tax, and strict transfer would refuse an untaxed target anyway.
      target = ReserveClone(k, sim.taps(), *evil, income, proc.container, Label(Level::k1),
                            "stash")
                   .value_or(kInvalidObjectId);
    } else {
      target = ReserveCreate(k, *evil, proc.container, Label(Level::k1), "stash")
                   .value_or(kInvalidObjectId);
    }
    if (target != kInvalidObjectId) {
      for (ObjectId from : stashes) {
        Quantity lvl = ReserveLevel(k, *evil, from).value_or(0);
        if (lvl > 0) {
          if (defense == Defense::kStrictClone) {
            (void)ReserveTransferStrict(k, sim.taps(), *evil, from, target, lvl);
          } else {
            (void)ReserveTransfer(k, *evil, from, target, lvl);
          }
        }
      }
      stashes.push_back(target);
    }
    sim.ScheduleAfter(Duration::Seconds(10), shuttle);
  };
  sim.ScheduleAfter(Duration::Seconds(10), shuttle);

  sim.Run(horizon);
  Quantity total = 0;
  for (ObjectId r : stashes) {
    total += ReserveLevel(k, *boot, r).value_or(0);
  }
  return ToEnergy(total).joules_f();
}

void Run() {
  PrintHeader("Ablation — hoarding defenses: none vs decay vs reserve_clone (section 5.2.2)",
              "the shell game defeats decay-free systems; both defenses bound the hoard");
  TableWriter t("hoard accumulated by the shell-game attacker (100 mW tap)");
  t.SetColumns({"defense", "30_min_J", "60_min_J", "bounded"});
  const double none30 = HoardAfter(Defense::kNone, Duration::Minutes(30));
  const double none60 = HoardAfter(Defense::kNone, Duration::Minutes(60));
  const double decay30 = HoardAfter(Defense::kDecay, Duration::Minutes(30));
  const double decay60 = HoardAfter(Defense::kDecay, Duration::Minutes(60));
  const double strict30 = HoardAfter(Defense::kStrictClone, Duration::Minutes(30));
  const double strict60 = HoardAfter(Defense::kStrictClone, Duration::Minutes(60));
  t.AddRow({"none", TableWriter::Num(none30, 1), TableWriter::Num(none60, 1), "no"});
  t.AddRow({"global decay (shipped)", TableWriter::Num(decay30, 1),
            TableWriter::Num(decay60, 1), "yes (~86.6 J)"});
  t.AddRow({"reserve_clone + strict transfers", TableWriter::Num(strict30, 1),
            TableWriter::Num(strict60, 1), "yes (~86.6 J)"});
  t.Print();
  std::printf("summary: the global decay bounds the hoard even though the attacker mints\n"
              "fresh reserves (every reserve leaks); the strict design achieves the same\n"
              "bound structurally — clones inherit the drain and strict transfers refuse\n"
              "untaxed targets — at the cost of more complex application semantics, which\n"
              "is exactly the trade-off the paper leaves open.\n");
}

}  // namespace
}  // namespace cinder

int main() {
  cinder::Run();
  return 0;
}
