// Figure 11: image viewer WITH energy-aware scaling of image quality.
//
// Paper result: as energy becomes scarce the viewer fetches lower-quality
// interlaced-PNG prefixes; the reserve dips but never reaches zero and the
// workload completes ~5x faster than the non-adaptive viewer.
#include "bench/viewer_common.h"

int main() {
  cinder::PrintHeader("Figure 11 — image viewer with energy-aware scaling",
                      "bytes/image shrink with reserve level; never stalls; ~5x faster");
  cinder::RunViewerBench(/*adaptive=*/true);
  return 0;
}
