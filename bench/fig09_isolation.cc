// Figure 9: stacked per-process CPU energy estimates while process B forks
// B1 (~5 s) and B2 (~10 s).
//
// Paper result: A keeps ~50% of the CPU (isolation from B's forks); B
// subdivides its own power so B ~34 mW, B1/B2 ~17 mW each; the sum of the
// estimates matches the measured CPU draw of ~139 mW.
#include "bench/bench_util.h"
#include "src/apps/scenarios.h"

namespace cinder {
namespace {

void Run() {
  PrintHeader("Figure 9 — isolation: estimated per-process power, B forks at 5 s / 10 s",
              "A steady ~68 mW; B 34 mW + B1/B2 17 mW each; sum ~= measured 139 mW");

  IsolationResult r = RunIsolationScenario(Duration::Seconds(60));
  PrintSeries("A (mW)", r.power_a);
  PrintSeries("B (mW)", r.power_b);
  PrintSeries("B1 (mW)", r.power_b1);
  PrintSeries("B2 (mW)", r.power_b2);

  TableWriter t("steady-state (last 30 s)");
  t.SetColumns({"process", "estimated_mW", "paper_mW"});
  t.AddRow({"A", TableWriter::Num(r.steady_a_mw, 1), "~68"});
  t.AddRow({"B", TableWriter::Num(r.steady_b_mw, 1), "~34"});
  t.AddRow({"B1", TableWriter::Num(r.steady_b1_mw, 1), "~17"});
  t.AddRow({"B2", TableWriter::Num(r.steady_b2_mw, 1), "~17"});
  t.AddRow({"sum", TableWriter::Num(r.steady_a_mw + r.steady_b_mw + r.steady_b1_mw +
                                        r.steady_b2_mw, 1),
            "~137"});
  t.AddRow({"measured_cpu", TableWriter::Num(r.measured_cpu_mw, 1), "~139"});
  t.Print();
}

}  // namespace
}  // namespace cinder

int main() {
  cinder::Run();
  return 0;
}
