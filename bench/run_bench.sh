#!/usr/bin/env bash
# Runs the kernel-primitive microbenchmarks and writes BENCH_micro.json at the
# repo root, so the perf trajectory is tracked across PRs (compare against the
# numbers recorded in docs/PERFORMANCE.md).
#
# Usage:
#   bench/run_bench.sh [build_dir] [benchmark_filter]
#   bench/run_bench.sh --compare BASELINE.json [build_dir] [benchmark_filter]
#
# --compare mode additionally diffs the fresh results against BASELINE.json
# (bench/compare_bench.py) and exits non-zero if any gated benchmark
# (BM_TapBatch/512, BM_TapBatch/32768, BM_TapBatchTelemetry/32768,
# BM_DecaySparse/{4096,32768}, the giant-component worker-scaling cases
# BM_TapBatchGiant/taps:32768 at 1/2/4 workers, the chain-cutting cases
# BM_TapBatchChain/depth:{1024,8192} at 1/4 workers, and the scheduler-plan
# cases BM_SchedPick/128 + BM_SimStepBatched/K:{1,16,64}) regressed by more
# than 20% — the cross-PR CI gate.
#
# Independent of --compare, every run whose filter covers both tap-batch
# benchmarks also runs the paired telemetry-overhead probe
# (micro_kernel_ops --telemetry_gate=...) and gates BM_TapBatchTelemetry/32768
# AND BM_TapBatchStreaming/32768 (full pipeline: ring flush -> file sink ->
# tmpfs) within 2% of BM_TapBatch/32768. The probe rotates the engines in
# ~25ms blocks inside one process — sequential benchmark timings drift by
# ±10% on shared runners and cannot resolve a 2% budget, the paired probe
# reproduces to well under 1%.
set -euo pipefail

repo_root="$(cd "$(dirname "$0")/.." && pwd)"

baseline=""
if [[ "${1:-}" == "--compare" ]]; then
  baseline="${2:?--compare needs a baseline json path}"
  shift 2
  # The run below overwrites BENCH_micro.json, which is a valid baseline
  # path; snapshot it first.
  baseline_copy="$(mktemp)"
  cp "$baseline" "$baseline_copy"
  baseline="$baseline_copy"
fi

build_dir="${1:-$repo_root/build}"
filter="${2:-.}"

if [[ ! -x "$build_dir/micro_kernel_ops" ]]; then
  echo "building micro_kernel_ops in $build_dir ..." >&2
  cmake -B "$build_dir" -S "$repo_root" >&2
  cmake --build "$build_dir" --target micro_kernel_ops -j >&2
fi

"$build_dir/micro_kernel_ops" \
  --benchmark_filter="$filter" \
  --benchmark_format=json \
  --benchmark_out="$repo_root/BENCH_micro.json" \
  --benchmark_out_format=json

echo "wrote $repo_root/BENCH_micro.json" >&2

# Telemetry-overhead ratio gate, whenever the filter produced both sides.
if python3 - "$repo_root/BENCH_micro.json" <<'EOF'
import json, sys
names = {b["name"] for b in json.load(open(sys.argv[1])).get("benchmarks", [])}
sys.exit(0 if {"BM_TapBatch/32768", "BM_TapBatchTelemetry/32768"} <= names else 1)
EOF
then
  # Best of two probe runs: the paired estimator cancels drift but not
  # per-process allocator-layout luck (~±1%), so a single run of a true
  # ~0.5% overhead can still graze the 2% line. A genuine regression fails
  # both runs.
  gate_json="$(mktemp --suffix=.json)"
  gate_ok=0
  for attempt in 1 2; do
    "$build_dir/micro_kernel_ops" --telemetry_gate="$gate_json"
    if python3 "$repo_root/bench/compare_bench.py" \
      --current "$gate_json" \
      --relative-gate 'BM_TapBatchTelemetry/32768:BM_TapBatch/32768:0.02' \
      --relative-gate 'BM_TapBatchStreaming/32768:BM_TapBatch/32768:0.02'; then
      gate_ok=1
      break
    fi
    echo "telemetry gate attempt $attempt failed" >&2
  done
  rm -f "$gate_json"
  if [[ "$gate_ok" != 1 ]]; then
    echo "telemetry overhead gate failed on both attempts" >&2
    exit 1
  fi
fi

if [[ -n "$baseline" ]]; then
  # COMPARE_WARN_ONLY=1 reports gate violations without failing — for
  # baselines recorded on a different machine, where absolute times are not
  # comparable (e.g. CI falling back to the committed BENCH_micro.json).
  warn_flag=()
  if [[ "${COMPARE_WARN_ONLY:-0}" == "1" ]]; then
    warn_flag=(--warn-only)
  fi
  python3 "$repo_root/bench/compare_bench.py" \
    --baseline "$baseline" \
    --current "$repo_root/BENCH_micro.json" \
    --gate 'BM_TapBatch/512' \
    --gate 'BM_TapBatch/32768' \
    --gate 'BM_TapBatchTelemetry/32768' \
    --gate 'BM_TapBatchStreaming/32768' \
    --gate 'BM_DecaySparse/4096' \
    --gate 'BM_DecaySparse/32768' \
    --gate 'BM_TapBatchGiant/taps:32768/workers:1' \
    --gate 'BM_TapBatchGiant/taps:32768/workers:2' \
    --gate 'BM_TapBatchGiant/taps:32768/workers:4' \
    --gate 'BM_TapBatchChain/depth:1024/workers:1' \
    --gate 'BM_TapBatchChain/depth:1024/workers:4' \
    --gate 'BM_TapBatchChain/depth:8192/workers:1' \
    --gate 'BM_TapBatchChain/depth:8192/workers:4' \
    --gate 'BM_SchedPick/128' \
    --gate 'BM_SimStepBatched/K:1' \
    --gate 'BM_SimStepBatched/K:16' \
    --gate 'BM_SimStepBatched/K:64' \
    --max-regression 0.20 \
    "${warn_flag[@]}"
fi
