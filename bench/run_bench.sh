#!/usr/bin/env bash
# Runs the kernel-primitive microbenchmarks and writes BENCH_micro.json at the
# repo root, so the perf trajectory is tracked across PRs (compare against the
# numbers recorded in docs/PERFORMANCE.md).
#
# Usage: bench/run_bench.sh [build_dir] [benchmark_filter]
set -euo pipefail

repo_root="$(cd "$(dirname "$0")/.." && pwd)"
build_dir="${1:-$repo_root/build}"
filter="${2:-.}"

if [[ ! -x "$build_dir/micro_kernel_ops" ]]; then
  echo "building micro_kernel_ops in $build_dir ..." >&2
  cmake -B "$build_dir" -S "$repo_root" >&2
  cmake --build "$build_dir" --target micro_kernel_ops -j >&2
fi

"$build_dir/micro_kernel_ops" \
  --benchmark_filter="$filter" \
  --benchmark_format=json \
  --benchmark_out="$repo_root/BENCH_micro.json" \
  --benchmark_out_format=json

echo "wrote $repo_root/BENCH_micro.json" >&2
