// Shared driver for the Figure 12a/12b task-manager benches.
#pragma once

#include "bench/bench_util.h"
#include "src/apps/scenarios.h"

namespace cinder {

inline void RunFig12(Power foreground_rate) {
  BackgroundResult r = RunBackgroundScenario(foreground_rate);
  PrintSeries("A estimated power (mW)", r.power_a);
  PrintSeries("B estimated power (mW)", r.power_b);

  TableWriter t("window means");
  t.SetColumns({"window", "A_mW", "B_mW"});
  t.AddRow({"background (2-10s)", TableWriter::Num(r.background_pair_mw / 2.0, 1),
            TableWriter::Num(r.background_pair_mw / 2.0, 1)});
  t.AddRow({"A foreground (12-20s)", TableWriter::Num(r.a_foreground_mw, 1), "-"});
  t.AddRow({"after A demoted (23-28s)", TableWriter::Num(r.a_after_demotion_mw, 1), "-"});
  t.AddRow({"after B demoted (40-50s)", "-", TableWriter::Num(r.b_after_demotion_mw, 1)});
  t.Print();
}

}  // namespace cinder
