// Shared driver for the Figure 13a/13b radio-access benches.
#pragma once

#include "bench/bench_util.h"
#include "src/apps/scenarios.h"

namespace cinder {

inline CooperationResult RunFig13(NetdMode mode) {
  CooperationConfig cfg;
  cfg.mode = mode;
  if (mode == NetdMode::kUnrestricted) {
    // The paper's uncooperative run staggered the pollers; measured drift
    // kept their radio episodes disjoint (Figure 13a shows separated spikes).
    cfg.mail_start = Duration::Seconds(30);
  }
  CooperationResult r = RunCooperationScenario(cfg);
  PrintSeries("true power (W, rebinned to 2 s)", r.true_power_w, Duration::Seconds(2));
  std::printf("summary: activations=%lld active_time_s=%.0f total_energy_J=%.0f "
              "rss_polls=%lld mail_polls=%lld\n",
              static_cast<long long>(r.activations), r.active_time_s, r.total_energy_j,
              static_cast<long long>(r.rss_polls), static_cast<long long>(r.mail_polls));
  return r;
}

}  // namespace cinder
