// Shared helpers for the figure/table regeneration binaries.
#pragma once

#include <cstdio>

#include "src/base/table_writer.h"
#include "src/base/time_series.h"

namespace cinder {

// Prints a time series as CSV rows (time_s, value) under a titled block, with
// optional downsampling to keep terminal output reviewable.
inline void PrintSeries(const char* title, const TimeSeries& s,
                        Duration bin = Duration::Zero()) {
  const TimeSeries out = bin.IsPositive() ? s.Rebin(bin) : s;
  std::printf("# series: %s (%zu points%s)\n", title, out.size(),
              bin.IsPositive() ? ", rebinned" : "");
  std::printf("time_s,%s\n", out.name().empty() ? "value" : out.name().c_str());
  for (size_t i = 0; i < out.size(); ++i) {
    std::printf("%.1f,%.4f\n", out[i].time.seconds_f(), out[i].value);
  }
  std::printf("\n");
}

inline void PrintHeader(const char* fig, const char* paper_claim) {
  std::printf("==============================================================\n");
  std::printf("%s\n", fig);
  std::printf("paper: %s\n", paper_claim);
  std::printf("==============================================================\n");
}

}  // namespace cinder
