// Table 1: improvements in energy consumption and active radio time using
// cooperative resource sharing.
//
// Paper numbers over a 1201 s run:
//                Non-Coop   Coop    Improvement
//   Total Time     1201 s   1201 s  n/a
//   Total Energy   1238 J   1083 J  12.5%
//   Active Time     949 s    510 s  46.3%
//   Active Energy  1064 J    594 J  44.2%
#include "bench/bench_util.h"
#include "src/apps/scenarios.h"

int main() {
  using namespace cinder;
  PrintHeader("Table 1 — cooperative resource sharing summary (1201 s runs)",
              "energy -12.5%, active time -46.3%, active energy -44.2%");

  CooperationConfig uncoop_cfg;
  uncoop_cfg.mode = NetdMode::kUnrestricted;
  uncoop_cfg.mail_start = Duration::Seconds(30);
  CooperationResult uncoop = RunCooperationScenario(uncoop_cfg);

  CooperationConfig coop_cfg;
  coop_cfg.mode = NetdMode::kCooperative;
  CooperationResult coop = RunCooperationScenario(coop_cfg);

  auto improvement = [](double a, double b) {
    return a > 0.0 ? 100.0 * (a - b) / a : 0.0;
  };

  TableWriter t("Table 1");
  t.SetColumns({"metric", "non_coop", "coop", "improv_%", "paper_non_coop", "paper_coop",
                "paper_improv_%"});
  t.AddRow({"total_time_s", TableWriter::Num(uncoop.total_time_s, 0),
            TableWriter::Num(coop.total_time_s, 0), "n/a", "1201", "1201", "n/a"});
  t.AddRow({"total_energy_J", TableWriter::Num(uncoop.total_energy_j, 0),
            TableWriter::Num(coop.total_energy_j, 0),
            TableWriter::Num(improvement(uncoop.total_energy_j, coop.total_energy_j), 1),
            "1238", "1083", "12.5"});
  t.AddRow({"active_time_s", TableWriter::Num(uncoop.active_time_s, 0),
            TableWriter::Num(coop.active_time_s, 0),
            TableWriter::Num(improvement(uncoop.active_time_s, coop.active_time_s), 1), "949",
            "510", "46.3"});
  t.AddRow({"active_energy_J", TableWriter::Num(uncoop.active_energy_j, 0),
            TableWriter::Num(coop.active_energy_j, 0),
            TableWriter::Num(improvement(uncoop.active_energy_j, coop.active_energy_j), 1),
            "1064", "594", "44.2"});
  t.Print();
  return 0;
}
