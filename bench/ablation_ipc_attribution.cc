// Ablation (paper section 7.1): gate-based IPC vs Linux-style message-passing
// IPC for energy attribution.
//
// The same service workload runs through (a) a HiStar gate, where the
// client's thread executes the service code and bills its own reserve, and
// (b) a pipe-fed daemon, where a server thread does the work on its own
// reserve. The gate path attributes 100% of the cost to the requesting
// client; the pipe path attributes 0%.
#include "bench/bench_util.h"
#include "src/baseline/pipe_ipc.h"
#include "src/core/syscalls.h"

int main() {
  using namespace cinder;
  PrintHeader("Ablation — IPC energy attribution: gates vs message passing",
              "gates bill the caller across address spaces; pipes bill the daemon");

  SimConfig cfg;
  cfg.decay_enabled = false;
  Simulator sim(cfg);
  Kernel& k = sim.kernel();
  Thread* boot = sim.boot_thread();

  PipeIpcService pipe_svc(&sim, Power::Milliwatts(137));
  GateComputeService gate_svc(&sim);

  // Three clients with different request volumes.
  struct Client {
    Simulator::Process proc;
    ObjectId reserve;
    int64_t requests;
  };
  std::vector<Client> clients;
  const int64_t volumes[] = {1, 3, 6};
  for (int i = 0; i < 3; ++i) {
    Client c;
    c.proc = sim.CreateProcess("client" + std::to_string(i));
    c.reserve =
        ReserveCreate(k, *boot, c.proc.container, Label(Level::k1), "r").value();
    (void)ReserveTransfer(k, *boot, sim.battery_reserve_id(), c.reserve,
                          ToQuantity(Energy::Joules(5.0)));
    k.LookupTyped<Thread>(c.proc.thread)->set_active_reserve(c.reserve);
    c.requests = volumes[i];
    clients.push_back(c);
  }

  const int64_t kWorkQuanta = 200;  // 27.4 mJ of CPU per request.
  for (const Client& c : clients) {
    for (int64_t r = 0; r < c.requests; ++r) {
      pipe_svc.Request(c.proc.thread, kWorkQuanta);
      Thread* t = k.LookupTyped<Thread>(c.proc.thread);
      (void)gate_svc.Call(*t, kWorkQuanta);
    }
  }
  sim.Run(Duration::Seconds(30));

  const double per_request_mj =
      (sim.config().model.cpu_active * (sim.config().quantum * kWorkQuanta)).millijoules_f();
  TableWriter t("attribution");
  t.SetColumns({"principal", "true_cost_mJ", "billed_gate_mJ", "billed_pipe_mJ"});
  Energy pipe_total;
  for (size_t i = 0; i < clients.size(); ++i) {
    const Client& c = clients[i];
    // The gate path records against the client; the pipe path records the
    // daemon's spinning against the daemon only.
    Energy billed = sim.meter().ForPrincipalComponent(c.proc.thread, Component::kCpu);
    t.AddRow({"client" + std::to_string(i),
              TableWriter::Num(per_request_mj * static_cast<double>(c.requests) * 2.0, 1),
              TableWriter::Num(billed.millijoules_f(), 1), "0.0"});
  }
  pipe_total = sim.meter().ForPrincipalComponent(pipe_svc.server_thread(), Component::kCpu);
  t.AddRow({"pipe daemon", "0.0", "0.0", TableWriter::Num(pipe_total.millijoules_f(), 1)});
  t.Print();
  std::printf("summary: pipe path misattributes %.1f mJ of client work to the daemon; the\n"
              "gate path bills each client in proportion to its requests (1:3:6).\n",
              pipe_total.millijoules_f());
  return 0;
}
