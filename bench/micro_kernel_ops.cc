// Microbenchmarks (google-benchmark) for Cinder's kernel primitives: label
// checks, reserve operations, tap-engine batches at varying scale, gate
// calls, and scheduler picks. These quantify the claim of section 3.3 that
// taps are cheaper than dedicated transfer threads: a full tap batch over N
// taps is a tight loop, not N context switches.
#include <benchmark/benchmark.h>

#include <algorithm>
#include <cstdio>
#include <cstring>
#include <ctime>
#include <memory>
#include <vector>

#include "src/core/syscalls.h"
#include "src/core/tap_engine.h"
#include "src/exec/shard_executor.h"
#include "src/histar/kernel.h"
#include "src/sim/simulator.h"
#include "src/telemetry/file_stream_sink.h"
#include "src/telemetry/trace_domain.h"

namespace cinder {
namespace {

void BM_LabelFlowsTo(benchmark::State& state) {
  Label a(Level::k1);
  Label b(Level::k1);
  for (int i = 0; i < 4; ++i) {
    a.Set(static_cast<Category>(i + 1), Level::k2);
    b.Set(static_cast<Category>(i + 1), Level::k3);
  }
  CategorySet privs;
  privs.Add(2);
  for (auto _ : state) {
    benchmark::DoNotOptimize(Label::FlowsTo(a, b, privs));
  }
}
BENCHMARK(BM_LabelFlowsTo);

void BM_ReserveConsume(benchmark::State& state) {
  Reserve r(1, Label(Level::k1), "r");
  r.Deposit(INT64_MAX / 2);
  for (auto _ : state) {
    benchmark::DoNotOptimize(r.Consume(137));
  }
}
BENCHMARK(BM_ReserveConsume);

void BM_ReserveTransferSyscall(benchmark::State& state) {
  Kernel k;
  Thread* t = k.Create<Thread>(k.root_container_id(), Label(Level::k1), "t");
  Reserve* a = k.Create<Reserve>(k.root_container_id(), Label(Level::k1), "a");
  Reserve* b = k.Create<Reserve>(k.root_container_id(), Label(Level::k1), "b");
  a->Deposit(INT64_MAX / 2);
  for (auto _ : state) {
    benchmark::DoNotOptimize(ReserveTransfer(k, *t, a->id(), b->id(), 1000));
  }
}
BENCHMARK(BM_ReserveTransferSyscall);

void BM_TapBatch(benchmark::State& state) {
  const int n_taps = static_cast<int>(state.range(0));
  Kernel k;
  Reserve* battery = k.Create<Reserve>(k.root_container_id(), Label(Level::k1), "battery");
  battery->set_decay_exempt(true);
  battery->Deposit(INT64_MAX / 2);
  TapEngine engine(&k, battery->id());
  engine.decay().enabled = false;
  for (int i = 0; i < n_taps; ++i) {
    Reserve* r = k.Create<Reserve>(k.root_container_id(), Label(Level::k1), "r");
    Tap* tap = k.Create<Tap>(k.root_container_id(), Label(Level::k1), "t", battery->id(),
                             r->id());
    tap->SetConstantPower(Power::Milliwatts(1));
    engine.Register(tap->id());
  }
  for (auto _ : state) {
    engine.RunBatch(Duration::Millis(10));
  }
  state.SetItemsProcessed(state.iterations() * n_taps);
}
BENCHMARK(BM_TapBatch)->Arg(1)->Arg(8)->Arg(64)->Arg(512)->Arg(4096)->Arg(32768);

// BM_TapBatch with always-on telemetry attached (default record mask,
// bounded spill, per-batch flush). Tracked as an ordinary benchmark for the
// cross-PR trend; the <2% overhead CI gate is measured by the paired
// --telemetry_gate probe below, not by comparing the two benchmarks' own
// timings (sequential runs drift too much to resolve 2%).
void BM_TapBatchTelemetry(benchmark::State& state) {
  const int n_taps = static_cast<int>(state.range(0));
  Kernel k;
  Reserve* battery = k.Create<Reserve>(k.root_container_id(), Label(Level::k1), "battery");
  battery->set_decay_exempt(true);
  battery->Deposit(INT64_MAX / 2);
  TapEngine engine(&k, battery->id());
  engine.decay().enabled = false;
  TelemetryConfig cfg;
  cfg.enabled = true;
  TraceDomain domain(cfg);
  engine.set_telemetry(&domain);
  for (int i = 0; i < n_taps; ++i) {
    Reserve* r = k.Create<Reserve>(k.root_container_id(), Label(Level::k1), "r");
    Tap* tap = k.Create<Tap>(k.root_container_id(), Label(Level::k1), "t", battery->id(),
                             r->id());
    tap->SetConstantPower(Power::Milliwatts(1));
    engine.Register(tap->id());
  }
  for (auto _ : state) {
    engine.RunBatch(Duration::Millis(10));
  }
  state.SetItemsProcessed(state.iterations() * n_taps);
}
BENCHMARK(BM_TapBatchTelemetry)->Arg(512)->Arg(32768);

// A scratch file for streaming benchmarks: tmpfs when available so the
// numbers measure the sink's CPU cost, not disk latency.
std::string StreamScratchPath(const char* name) {
  std::string shm = std::string("/dev/shm/") + name;
  if (std::FILE* probe = std::fopen(shm.c_str(), "wb")) {
    std::fclose(probe);
    return shm;
  }
  return std::string("/tmp/") + name;
}

// BM_TapBatchTelemetry with a FileStreamSink attached: the full streaming
// pipeline (ring flush -> sink -> stdio buffer -> tmpfs), no retention. The
// <2% CI budget versus the bare batch is enforced by the paired probe below,
// same as the telemetry-only overhead.
void BM_TapBatchStreaming(benchmark::State& state) {
  const int n_taps = static_cast<int>(state.range(0));
  Kernel k;
  Reserve* battery = k.Create<Reserve>(k.root_container_id(), Label(Level::k1), "battery");
  battery->set_decay_exempt(true);
  battery->Deposit(INT64_MAX / 2);
  TapEngine engine(&k, battery->id());
  engine.decay().enabled = false;
  FileStreamSink sink;  // Declared before the domain: sinks outlive it.
  TelemetryConfig cfg;
  cfg.enabled = true;
  TraceDomain domain(cfg);
  const std::string path = StreamScratchPath("cinder_bench_stream.bin");
  std::string err;
  if (!sink.Open(path, {}, &err)) {
    state.SkipWithError(err.c_str());
    return;
  }
  domain.AddSink(&sink);
  engine.set_telemetry(&domain);
  for (int i = 0; i < n_taps; ++i) {
    Reserve* r = k.Create<Reserve>(k.root_container_id(), Label(Level::k1), "r");
    Tap* tap = k.Create<Tap>(k.root_container_id(), Label(Level::k1), "t", battery->id(),
                             r->id());
    tap->SetConstantPower(Power::Milliwatts(1));
    engine.Register(tap->id());
  }
  for (auto _ : state) {
    engine.RunBatch(Duration::Millis(10));
  }
  state.SetItemsProcessed(state.iterations() * n_taps);
  domain.RemoveSink(&sink);
  std::remove(path.c_str());
}
BENCHMARK(BM_TapBatchStreaming)->Arg(512)->Arg(32768);

// The sharded path on a fleet-like topology: `n_taps` taps spread over 16
// disconnected components (one source pool each). arg1 is the worker count;
// 0 runs the same topology through the unsharded engine for a direct
// baseline. Flows are bit-identical across all variants by construction.
void BM_TapBatchSharded(benchmark::State& state) {
  const int n_taps = static_cast<int>(state.range(0));
  const int workers = static_cast<int>(state.range(1));
  constexpr int kComponents = 16;
  Kernel k;
  Reserve* battery = k.Create<Reserve>(k.root_container_id(), Label(Level::k1), "battery");
  battery->set_decay_exempt(true);
  TapEngine engine(&k, battery->id());
  engine.decay().enabled = false;
  ShardExecutor exec(workers > 0 ? workers : 1);
  if (workers > 0) {
    engine.EnableSharding(&exec);
  }
  std::vector<Reserve*> pools;
  for (int c = 0; c < kComponents; ++c) {
    Reserve* pool = k.Create<Reserve>(k.root_container_id(), Label(Level::k1), "pool");
    pool->Deposit(INT64_MAX / (2 * kComponents));
    pools.push_back(pool);
  }
  for (int i = 0; i < n_taps; ++i) {
    Reserve* r = k.Create<Reserve>(k.root_container_id(), Label(Level::k1), "r");
    Tap* tap = k.Create<Tap>(k.root_container_id(), Label(Level::k1), "t",
                             pools[i % kComponents]->id(), r->id());
    tap->SetConstantPower(Power::Milliwatts(1));
    engine.Register(tap->id());
  }
  for (auto _ : state) {
    engine.RunBatch(Duration::Millis(10));
  }
  state.SetItemsProcessed(state.iterations() * n_taps);
}
BENCHMARK(BM_TapBatchSharded)
    ->ArgNames({"taps", "workers"})
    ->Args({512, 0})
    ->Args({512, 1})
    ->Args({512, 4})
    ->Args({32768, 0})
    ->Args({32768, 1})
    ->Args({32768, 2})
    ->Args({32768, 4});

// The intra-shard range split on a giant single component: one pool fans out
// to `n_taps` sinks, so shard-level parallelism has exactly one shard to
// offer and all scaling must come from splitting its plan into ranges.
// workers=0 runs the sharded engine with splitting disabled (the whole-shard
// baseline); workers>=1 split into 8 ranges on that many workers (1 = the
// split pipeline run serially in the caller, isolating the split overhead
// from pool parallelism).
void BM_TapBatchGiant(benchmark::State& state) {
  const int n_taps = static_cast<int>(state.range(0));
  const int workers = static_cast<int>(state.range(1));
  Kernel k;
  Reserve* battery = k.Create<Reserve>(k.root_container_id(), Label(Level::k1), "battery");
  battery->set_decay_exempt(true);
  TapEngine engine(&k, battery->id());
  engine.decay().enabled = false;
  if (workers == 0) {
    engine.split().min_entries = 0;
  }
  ShardExecutor exec(workers > 0 ? workers : 1);
  engine.EnableSharding(&exec);
  Reserve* pool = k.Create<Reserve>(k.root_container_id(), Label(Level::k1), "pool");
  pool->Deposit(INT64_MAX / 2);
  for (int i = 0; i < n_taps; ++i) {
    Reserve* r = k.Create<Reserve>(k.root_container_id(), Label(Level::k1), "r");
    Tap* tap = k.Create<Tap>(k.root_container_id(), Label(Level::k1), "t", pool->id(),
                             r->id());
    tap->SetConstantPower(Power::Milliwatts(1));
    engine.Register(tap->id());
  }
  for (auto _ : state) {
    engine.RunBatch(Duration::Millis(10));
  }
  state.SetItemsProcessed(state.iterations() * n_taps);
}
BENCHMARK(BM_TapBatchGiant)
    ->ArgNames({"taps", "workers"})
    ->Args({32768, 0})
    ->Args({32768, 1})
    ->Args({32768, 2})
    ->Args({32768, 4});

// The deep-ladder topology the range split cannot parallelize: one chain of
// `depth` taps is a single component, but its plan is thousands of one-entry
// demand groups with chained destinations — range tickets would defer nearly
// every deposit, so splitting buys nothing and the uncut engine serializes
// the whole chain as one work item. Articulation cuts bound every sub-shard
// at 512 entries (depth/512 independent work items) and settle the severed
// taps' transfers in one serial pass at the batch boundary. Every node is
// pre-funded so all demand groups stay provably unconstrained and the lane
// path runs (the fused fallback would re-serialize). workers=0 is the
// sharded engine with cutting off (the whole-shard baseline); workers=1 runs
// the cut pipeline serially in the caller, isolating the cut machinery's
// overhead from pool parallelism.
void BM_TapBatchChain(benchmark::State& state) {
  const int depth = static_cast<int>(state.range(0));
  const int workers = static_cast<int>(state.range(1));
  Kernel k;
  Reserve* battery = k.Create<Reserve>(k.root_container_id(), Label(Level::k1), "battery");
  battery->set_decay_exempt(true);
  TapEngine engine(&k, battery->id());
  engine.decay().enabled = false;
  if (workers > 0) {
    engine.set_cut_threshold(512);
  }
  ShardExecutor exec(workers > 0 ? workers : 1);
  engine.EnableSharding(&exec);
  Reserve* prev = k.Create<Reserve>(k.root_container_id(), Label(Level::k1), "head");
  prev->Deposit(INT64_MAX / (2 * depth));
  for (int i = 0; i < depth; ++i) {
    Reserve* r = k.Create<Reserve>(k.root_container_id(), Label(Level::k1), "r");
    r->Deposit(INT64_MAX / (2 * depth));
    Tap* tap = k.Create<Tap>(k.root_container_id(), Label(Level::k1), "t", prev->id(),
                             r->id());
    tap->SetConstantPower(Power::Milliwatts(1));
    engine.Register(tap->id());
    prev = r;
  }
  for (auto _ : state) {
    engine.RunBatch(Duration::Millis(10));
  }
  state.SetItemsProcessed(state.iterations() * depth);
}
BENCHMARK(BM_TapBatchChain)
    ->ArgNames({"depth", "workers"})
    ->Args({1024, 0})
    ->Args({1024, 1})
    ->Args({1024, 4})
    ->Args({8192, 0})
    ->Args({8192, 1})
    ->Args({8192, 4});

void BM_TapBatchWithDecay(benchmark::State& state) {
  const int n_reserves = static_cast<int>(state.range(0));
  Kernel k;
  Reserve* battery = k.Create<Reserve>(k.root_container_id(), Label(Level::k1), "battery");
  battery->set_decay_exempt(true);
  battery->Deposit(INT64_MAX / 2);
  TapEngine engine(&k, battery->id());
  engine.decay().enabled = true;
  for (int i = 0; i < n_reserves; ++i) {
    Reserve* r = k.Create<Reserve>(k.root_container_id(), Label(Level::k1), "r");
    r->Deposit(1000000000);
  }
  for (auto _ : state) {
    engine.RunBatch(Duration::Millis(10));
  }
  state.SetItemsProcessed(state.iterations() * n_reserves);
}
BENCHMARK(BM_TapBatchWithDecay)->Arg(8)->Arg(64)->Arg(512);

// The decay skip-list at fleet scale: almost every reserve is empty (level
// 0), and the pass must only pay for the non-empty 1%. Before the skip-list
// this walked all `n_reserves` every batch.
void BM_DecaySparse(benchmark::State& state) {
  const int n_reserves = static_cast<int>(state.range(0));
  Kernel k;
  Reserve* battery = k.Create<Reserve>(k.root_container_id(), Label(Level::k1), "battery");
  battery->set_decay_exempt(true);
  battery->Deposit(INT64_MAX / 2);
  TapEngine engine(&k, battery->id());
  engine.decay().enabled = true;
  // Near-infinite half-life: each visit still withdraws ~1 unit (so the full
  // carry/withdraw path runs), but the non-empty set drains by <5% over even
  // the longest benchmark run — we measure the steady visit cost, not the
  // transient toward an empty skip-list.
  engine.decay().half_life = Duration::Minutes(100000);
  for (int i = 0; i < n_reserves; ++i) {
    Reserve* r = k.Create<Reserve>(k.root_container_id(), Label(Level::k1), "r");
    if (i % 100 == 0) {
      r->Deposit(1000000000);
    }
  }
  for (auto _ : state) {
    engine.RunBatch(Duration::Millis(10));
  }
  state.SetItemsProcessed(state.iterations() * n_reserves);
}
BENCHMARK(BM_DecaySparse)->Arg(4096)->Arg(32768);

void BM_KernelLookup(benchmark::State& state) {
  const int n_objects = static_cast<int>(state.range(0));
  Kernel k;
  std::vector<ObjectId> ids;
  ids.reserve(n_objects);
  for (int i = 0; i < n_objects; ++i) {
    ids.push_back(k.Create<Reserve>(k.root_container_id(), Label(Level::k1), "r")->id());
  }
  size_t i = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(k.Lookup(ids[i]));
    i = (i + 1) % ids.size();
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_KernelLookup)->Arg(64)->Arg(4096)->Arg(32768);

void BM_ObjectsOfType(benchmark::State& state) {
  const int n_objects = static_cast<int>(state.range(0));
  Kernel k;
  for (int i = 0; i < n_objects; ++i) {
    k.Create<Reserve>(k.root_container_id(), Label(Level::k1), "r");
    k.Create<Thread>(k.root_container_id(), Label(Level::k1), "t");
  }
  for (auto _ : state) {
    benchmark::DoNotOptimize(k.ObjectsOfType(ObjectType::kReserve));
  }
  state.SetItemsProcessed(state.iterations() * n_objects);
}
BENCHMARK(BM_ObjectsOfType)->Arg(64)->Arg(4096)->Arg(32768);

void BM_GateCall(benchmark::State& state) {
  Kernel k;
  Thread* t = k.Create<Thread>(k.root_container_id(), Label(Level::k1), "t");
  AddressSpace* as = k.Create<AddressSpace>(k.root_container_id(), Label(Level::k1), "as");
  Gate* g = k.Create<Gate>(k.root_container_id(), Label(Level::k1), "g", as->id());
  g->set_handler([](Thread&, const GateMessage& msg) {
    GateReply r;
    r.rets.push_back(msg.args.empty() ? 0 : msg.args[0]);
    return r;
  });
  GateMessage msg;
  msg.args.push_back(1);
  for (auto _ : state) {
    benchmark::DoNotOptimize(k.GateCall(*t, g->id(), msg));
  }
}
BENCHMARK(BM_GateCall);

void BM_SchedulerPick(benchmark::State& state) {
  const int n_threads = static_cast<int>(state.range(0));
  Kernel k;
  EnergyAwareScheduler sched(&k);
  Reserve* r = k.Create<Reserve>(k.root_container_id(), Label(Level::k1), "r");
  r->Deposit(INT64_MAX / 2);
  for (int i = 0; i < n_threads; ++i) {
    Thread* t = k.Create<Thread>(k.root_container_id(), Label(Level::k1), "t");
    t->set_active_reserve(r->id());
    sched.AddThread(t->id());
  }
  for (auto _ : state) {
    benchmark::DoNotOptimize(sched.PickNext(SimTime::Zero()));
  }
}
BENCHMARK(BM_SchedulerPick)->Arg(2)->Arg(16)->Arg(128);

void BM_SimulatorStep(benchmark::State& state) {
  SimConfig cfg;
  cfg.decay_enabled = true;
  Simulator sim(cfg);
  Kernel& k = sim.kernel();
  for (int i = 0; i < 4; ++i) {
    auto proc = sim.CreateProcess("p" + std::to_string(i));
    Reserve* r = k.Create<Reserve>(proc.container, Label(Level::k1), "r");
    r->Deposit(INT64_MAX / 4);
    k.LookupTyped<Thread>(proc.thread)->set_active_reserve(r->id());
    sim.AttachBody(proc.thread, std::make_unique<SpinBody>());
  }
  for (auto _ : state) {
    sim.Step();
  }
}
BENCHMARK(BM_SimulatorStep);

// The pick cost the K-quanta plans amortize: an idle-heavy fleet (one funded
// spinner among N-1 energyless threads) where every single-quantum PickNext
// is a full O(N) scan that mostly counts denials. Compare against
// BM_SimStepBatched below, which replays the same decision from a plan.
void BM_SchedPick(benchmark::State& state) {
  const int n_threads = static_cast<int>(state.range(0));
  Kernel k;
  EnergyAwareScheduler sched(&k);
  Reserve* funded = k.Create<Reserve>(k.root_container_id(), Label(Level::k1), "funded");
  funded->Deposit(INT64_MAX / 2);
  Reserve* empty = k.Create<Reserve>(k.root_container_id(), Label(Level::k1), "empty");
  for (int i = 0; i < n_threads; ++i) {
    Thread* t = k.Create<Thread>(k.root_container_id(), Label(Level::k1), "t");
    t->set_active_reserve(i == 0 ? funded->id() : empty->id());
    sched.AddThread(t->id());
  }
  for (auto _ : state) {
    benchmark::DoNotOptimize(sched.PickNext(SimTime::Zero()));
  }
}
BENCHMARK(BM_SchedPick)->Arg(32)->Arg(128);

// Per-quantum cost of the batched stepper on an idle-heavy fleet (the
// fleet-scenario steady state: most threads energyless, a couple runnable)
// at plan horizons K in {1, 16, 64}. Results are bit-identical across K
// (golden-tested); only the per-quantum overhead moves. items_per_second is
// quanta per second — the honest single-CPU number for docs/PERFORMANCE.md.
void BM_SimStepBatched(benchmark::State& state) {
  SimConfig cfg;
  cfg.decay_enabled = false;
  cfg.exec.sched_plan_quanta = static_cast<uint32_t>(state.range(0));
  Simulator sim(cfg);
  Kernel& k = sim.kernel();
  for (int i = 0; i < 32; ++i) {
    auto proc = sim.CreateProcess("p" + std::to_string(i));
    Reserve* r = k.Create<Reserve>(proc.container, Label(Level::k1), "r");
    if (i < 2) {
      r->Deposit(INT64_MAX / 4);  // Two spinners stay runnable; 30 starve.
    }
    k.LookupTyped<Thread>(proc.thread)->set_active_reserve(r->id());
    sim.AttachBody(proc.thread, std::make_unique<SpinBody>());
  }
  constexpr int64_t kQuantaPerIter = 64;
  for (auto _ : state) {
    sim.Run(Duration::Millis(kQuantaPerIter));
  }
  state.SetItemsProcessed(state.iterations() * kQuantaPerIter);
}
BENCHMARK(BM_SimStepBatched)->ArgName("K")->Arg(1)->Arg(16)->Arg(64);

void BM_ObjectCreateDelete(benchmark::State& state) {
  Kernel k;
  for (auto _ : state) {
    Reserve* r = k.Create<Reserve>(k.root_container_id(), Label(Level::k1), "r");
    benchmark::DoNotOptimize(r);
    (void)k.Delete(r->id());
  }
}
BENCHMARK(BM_ObjectCreateDelete);

// --- Paired telemetry-overhead probe ---------------------------------------
// `micro_kernel_ops --telemetry_gate=OUT.json` measures the telemetry-on tap
// batch against the telemetry-off one by alternating the two engines in
// ~100-batch blocks on one thread, then writes the paired per-batch medians
// in google-benchmark JSON shape under the usual names, so
// compare_bench.py --relative-gate consumes the file unchanged.
//
// Why not just compare the two benchmarks above? On shared/virtualized
// runners, CPU steal and frequency drift move *sequential* measurements by
// ±10% — two orders of magnitude above the real overhead (<0.5%) and far
// above the 2% budget the gate enforces. Alternating at ~25ms granularity
// exposes both engines to the same machine conditions, which cancels the
// drift; repeated probe runs agree to well under 1%.

struct TelemetryGateRig {
  Kernel k;
  FileStreamSink sink;  // Declared before the domain: sinks outlive it.
  TraceDomain domain;
  std::unique_ptr<TapEngine> engine;
  std::string stream_path;

  // `stream_to` non-null additionally attaches a FileStreamSink writing
  // there, measuring the whole streaming pipeline (implies telemetry on).
  explicit TelemetryGateRig(bool telemetry_on, int n_taps,
                            const char* stream_to = nullptr) {
    Reserve* battery =
        k.Create<Reserve>(k.root_container_id(), Label(Level::k1), "battery");
    battery->set_decay_exempt(true);
    battery->Deposit(INT64_MAX / 2);
    engine = std::make_unique<TapEngine>(&k, battery->id());
    engine->decay().enabled = false;
    TelemetryConfig cfg;
    cfg.enabled = telemetry_on;
    domain.Configure(cfg);
    if (stream_to != nullptr) {
      stream_path = StreamScratchPath(stream_to);
      if (sink.Open(stream_path, {})) {
        domain.AddSink(&sink);
      }
    }
    engine->set_telemetry(&domain);
    for (int i = 0; i < n_taps; ++i) {
      Reserve* r = k.Create<Reserve>(k.root_container_id(), Label(Level::k1), "r");
      Tap* tap = k.Create<Tap>(k.root_container_id(), Label(Level::k1), "t",
                               battery->id(), r->id());
      tap->SetConstantPower(Power::Milliwatts(1));
      engine->Register(tap->id());
    }
  }

  ~TelemetryGateRig() {
    if (!stream_path.empty()) {
      domain.RemoveSink(&sink);
      std::remove(stream_path.c_str());
    }
  }

  // Thread CPU time for one block of batches, in ns. Thread time (rather
  // than wall time) additionally excludes preemption by other processes.
  double TimeBlock(int batches) {
    timespec t0, t1;
    clock_gettime(CLOCK_THREAD_CPUTIME_ID, &t0);
    for (int i = 0; i < batches; ++i) engine->RunBatch(Duration::Millis(10));
    clock_gettime(CLOCK_THREAD_CPUTIME_ID, &t1);
    return (t1.tv_sec - t0.tv_sec) * 1e9 + (t1.tv_nsec - t0.tv_nsec);
  }
};

int RunTelemetryGate(const char* out_path) {
  constexpr int kTaps = 32768;  // Matches BM_TapBatch*/32768.
  constexpr int kBlockBatches = 100;
  constexpr int kRounds = 60;
  TelemetryGateRig off(false, kTaps);
  TelemetryGateRig on(true, kTaps);
  TelemetryGateRig stream(true, kTaps, "cinder_gate_stream.bin");
  off.TimeBlock(20);  // Warm up allocator, caches, and tap order.
  on.TimeBlock(20);
  stream.TimeBlock(20);
  TelemetryGateRig* rigs[3] = {&off, &on, &stream};
  std::vector<double> times[3];
  for (int round = 0; round < kRounds; ++round) {
    // Rotate which rig goes first so within-round drift (a later block
    // always runs on a slightly different machine state than an earlier
    // one) cancels across rounds instead of biasing one rig.
    for (int j = 0; j < 3; ++j) {
      const int idx = (j + round) % 3;
      times[idx].push_back(rigs[idx]->TimeBlock(kBlockBatches));
    }
  }
  // The blocks of one round are adjacent in time, so machine-state drift
  // hits them near-identically: the per-round ratio cancels it, and the
  // median of per-round ratios is far tighter than the ratio of the
  // independent medians.
  auto paired_overhead = [&](const std::vector<double>& t) {
    std::vector<double> ratios;
    for (int round = 0; round < kRounds; ++round) {
      ratios.push_back(t[round] / times[0][round]);
    }
    std::sort(ratios.begin(), ratios.end());
    return ratios[kRounds / 2] - 1.0;
  };
  const double on_overhead = paired_overhead(times[1]);
  const double stream_overhead = paired_overhead(times[2]);
  std::vector<double> t_off = times[0];
  std::sort(t_off.begin(), t_off.end());
  const double off_ns = t_off[kRounds / 2] / kBlockBatches;
  const double on_ns = off_ns * (1.0 + on_overhead);
  const double stream_ns = off_ns * (1.0 + stream_overhead);
  std::fprintf(stderr,
               "telemetry gate probe: off %.0f ns/batch, paired overhead "
               "telemetry %+.2f%%, streaming %+.2f%%\n",
               off_ns, 100.0 * on_overhead, 100.0 * stream_overhead);
  std::FILE* f = std::fopen(out_path, "w");
  if (f == nullptr) {
    std::perror(out_path);
    return 1;
  }
  std::fprintf(f,
               "{\n"
               "  \"context\": {\"telemetry_gate_probe\": true},\n"
               "  \"benchmarks\": [\n"
               "    {\"name\": \"BM_TapBatch/32768\", \"run_type\": \"iteration\",\n"
               "     \"iterations\": %d, \"real_time\": %.1f, \"cpu_time\": %.1f,\n"
               "     \"time_unit\": \"ns\"},\n"
               "    {\"name\": \"BM_TapBatchTelemetry/32768\", \"run_type\": \"iteration\",\n"
               "     \"iterations\": %d, \"real_time\": %.1f, \"cpu_time\": %.1f,\n"
               "     \"time_unit\": \"ns\"},\n"
               "    {\"name\": \"BM_TapBatchStreaming/32768\", \"run_type\": \"iteration\",\n"
               "     \"iterations\": %d, \"real_time\": %.1f, \"cpu_time\": %.1f,\n"
               "     \"time_unit\": \"ns\"}\n"
               "  ]\n"
               "}\n",
               kRounds * kBlockBatches, off_ns, off_ns, kRounds * kBlockBatches,
               on_ns, on_ns, kRounds * kBlockBatches, stream_ns, stream_ns);
  std::fclose(f);
  return 0;
}

}  // namespace
}  // namespace cinder

int main(int argc, char** argv) {
  constexpr char kGateFlag[] = "--telemetry_gate=";
  for (int i = 1; i < argc; ++i) {
    if (std::strncmp(argv[i], kGateFlag, sizeof(kGateFlag) - 1) == 0) {
      return cinder::RunTelemetryGate(argv[i] + sizeof(kGateFlag) - 1);
    }
  }
  benchmark::Initialize(&argc, argv);
  if (benchmark::ReportUnrecognizedArguments(argc, argv)) return 1;
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}
