// Figure 4: radio activation power draw — one 1-byte UDP packet every ~40 s.
//
// Paper result: each activation plateau costs ~9.5 J above baseline
// (min 8.8 J, max 11.9 J); the device sleeps again after 20 s; occasional
// outliers (the "penultimate transition") occur unpredictably.
#include "bench/bench_util.h"
#include "src/apps/scenarios.h"

namespace cinder {
namespace {

void Run() {
  PrintHeader("Figure 4 — radio activation power draw (400 s, 1 B packet per ~40 s)",
              "plateaus ~9.5 J over baseline (8.8-11.9), 20 s forced sleep, outliers");

  ActivationTraceResult r = RunActivationTrace(Duration::Seconds(400), /*seed=*/7);
  PrintSeries("true power (W, 200 ms samples, rebinned to 1 s)", r.true_power_w,
              Duration::Seconds(1));

  TableWriter t("per-episode overhead");
  t.SetColumns({"episode", "joules_above_baseline"});
  double sum = 0.0;
  double lo = 1e9;
  double hi = 0.0;
  for (size_t i = 0; i < r.episode_joules.size(); ++i) {
    t.AddRow({std::to_string(i + 1), TableWriter::Num(r.episode_joules[i], 2)});
    sum += r.episode_joules[i];
    lo = std::min(lo, r.episode_joules[i]);
    hi = std::max(hi, r.episode_joules[i]);
  }
  t.Print();
  if (!r.episode_joules.empty()) {
    std::printf(
        "summary: avg=%.2f J (paper 9.5), min=%.2f (paper 8.8), max=%.2f (paper 11.9)\n",
        sum / static_cast<double>(r.episode_joules.size()), lo, hi);
  }
}

}  // namespace
}  // namespace cinder

int main() {
  cinder::Run();
  return 0;
}
