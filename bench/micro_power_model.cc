// Section 4.2 power-model check: regenerates the paper's measured component
// table from the model and verifies the derived quantities the evaluation
// depends on (activation overhead, per-byte cliff, battery lifetime math).
#include "bench/bench_util.h"
#include "src/energy/power_model.h"
#include "src/sim/simulator.h"

int main() {
  using namespace cinder;
  PrintHeader("Power model — HTC Dream constants (paper section 4.2/4.3)",
              "idle 699 mW; +555 mW backlight; +137 mW CPU; +13% memory ops; 9.5 J radio");

  const PowerModel& m = DefaultDreamModel();
  TableWriter t("component model");
  t.SetColumns({"component", "model", "paper"});
  t.AddRow({"idle baseline", TableWriter::Num(m.idle_baseline.milliwatts_f(), 0) + " mW",
            "699 mW"});
  t.AddRow({"backlight", TableWriter::Num(m.backlight.milliwatts_f(), 0) + " mW", "+555 mW"});
  t.AddRow({"cpu spin", TableWriter::Num(m.cpu_active.milliwatts_f(), 0) + " mW", "+137 mW"});
  t.AddRow({"memory instruction premium", TableWriter::Num(m.cpu_memory_premium * 100, 0) + "%",
            "+13%"});
  t.AddRow({"radio idle timeout", std::to_string(m.radio_idle_timeout.secs()) + " s", "20 s"});
  t.AddRow({"radio activation overhead",
            TableWriter::Num(m.NominalActivationOverhead().joules_f(), 1) + " J",
            "9.5 J (8.8-11.9)"});
  t.AddRow({"bulk data cost", TableWriter::Num(m.radio_energy_per_byte.microjoules_f(), 1) +
                                  " uJ/B",
            "~1000x cheaper than isolated"});
  t.AddRow({"battery (Figure 1)", TableWriter::Num(m.battery_capacity.joules_f(), 0) + " J",
            "15 kJ"});
  t.Print();

  // Measured check: simulate 60 s idle / backlight / spin and confirm the
  // simulator's true draw matches the table.
  auto measure = [](bool backlight, bool spin) {
    SimConfig cfg;
    cfg.decay_enabled = false;
    Simulator sim(cfg);
    sim.set_backlight(backlight);
    if (spin) {
      Kernel& k = sim.kernel();
      auto proc = sim.CreateProcess("spin");
      Reserve* r = k.Create<Reserve>(proc.container, Label(Level::k1), "r");
      r->DepositEnergy(Energy::Joules(100.0));
      k.LookupTyped<Thread>(proc.thread)->set_active_reserve(r->id());
      sim.AttachBody(proc.thread, std::make_unique<SpinBody>());
    }
    sim.Run(Duration::Seconds(60));
    return sim.total_true_energy().joules_f() / 60.0 * 1000.0;  // mW
  };
  TableWriter v("simulated draw (60 s means)");
  v.SetColumns({"state", "sim_mW", "expected_mW"});
  v.AddRow({"idle", TableWriter::Num(measure(false, false), 0), "699"});
  v.AddRow({"backlight", TableWriter::Num(measure(true, false), 0), "1254"});
  v.AddRow({"cpu spin", TableWriter::Num(measure(false, true), 0), "836"});
  v.Print();
  return 0;
}
