// Figure 13b: cooperative radio access using reserves and limits — the same
// pollers, each funded to activate the radio alone only every two minutes,
// pooling their income in netd's reserve.
//
// Paper result: pooled resources power the radio once per minute for BOTH
// applications together, roughly halving radio active time.
#include "bench/fig13_common.h"

int main() {
  cinder::PrintHeader("Figure 13b — cooperative radio access via netd pooling (1200 s)",
                      "joint activations every ~60 s; radio awake ~510 s of 1201 s");
  (void)cinder::RunFig13(cinder::NetdMode::kCooperative);
  return 0;
}
