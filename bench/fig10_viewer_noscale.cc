// Figure 10: image viewer WITHOUT energy-aware scaling.
//
// Paper result: full-size (~2.7 MiB) downloads outrun the reserve's tap; the
// reserve empties shortly into each batch and transfers stall, stretching the
// run to ~2500 s.
#include "bench/viewer_common.h"

int main() {
  cinder::PrintHeader("Figure 10 — image viewer, no application scaling",
                      "constant bytes/image; reserve hits 0; run time ~2500 s");
  cinder::RunViewerBench(/*adaptive=*/false);
  return 0;
}
