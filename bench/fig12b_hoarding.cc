// Figure 12b: task manager with the foreground tap at 300 mW — more than the
// CPU can spend, so the foreground app accumulates energy.
//
// Paper result: after demotion the app keeps burning its hoard (A competes
// ~50/50 while B is foreground; B then uses ~90% of the CPU after ITS
// demotion), motivating the global decay half-life.
#include "bench/fig12_common.h"

int main() {
  cinder::PrintHeader("Figure 12b — foreground tap = 300 mW (hoarding)",
                      "demoted apps keep running hot on accumulated energy");
  cinder::RunFig12(cinder::Power::Milliwatts(300));
  return 0;
}
