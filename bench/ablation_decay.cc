// Ablation (paper section 5.2.2): the global resource decay. Sweeps the
// half-life and reports the steady-state hoard a non-spending application can
// accumulate from a 100 mW tap, plus how much useful burst budget an honest
// bursty app retains.
#include "bench/bench_util.h"
#include "src/core/syscalls.h"
#include "src/sim/simulator.h"

namespace cinder {
namespace {

double SteadyHoardJoules(bool decay_enabled, Duration half_life) {
  SimConfig cfg;
  cfg.decay_enabled = decay_enabled;
  cfg.decay_half_life = half_life;
  Simulator sim(cfg);
  Kernel& k = sim.kernel();
  Thread* boot = sim.boot_thread();
  auto proc = sim.CreateProcess("hoarder");
  ObjectId r = ReserveCreate(k, *boot, proc.container, Label(Level::k1), "r").value();
  ObjectId tap = TapCreate(k, sim.taps(), *boot, proc.container, sim.battery_reserve_id(), r,
                           Label(Level::k1), "tap")
                     .value();
  (void)TapSetConstantPower(k, *boot, tap, Power::Milliwatts(100));
  sim.Run(Duration::Minutes(90));
  return ToEnergy(ReserveLevel(k, *boot, r).value()).joules_f();
}

void Run() {
  PrintHeader("Ablation — anti-hoarding decay half-life sweep",
              "default 50% per 10 min bounds hoards at rate/lambda; decay off is unbounded");

  TableWriter t("steady-state hoard from a 100 mW tap (90 min run)");
  t.SetColumns({"half_life", "hoard_J", "burst_budget_s_at_137mW"});
  const int64_t half_lives_min[] = {2, 5, 10, 30};
  for (int64_t hl : half_lives_min) {
    const double hoard = SteadyHoardJoules(true, Duration::Minutes(hl));
    t.AddRow({std::to_string(hl) + " min", TableWriter::Num(hoard, 1),
              TableWriter::Num(hoard / 0.137, 0)});
  }
  const double unbounded = SteadyHoardJoules(false, Duration::Minutes(10));
  t.AddRow({"off", TableWriter::Num(unbounded, 1), TableWriter::Num(unbounded / 0.137, 0)});
  t.Print();
  std::printf("summary: the paper's 10 min half-life caps the hoard near\n"
              "rate/lambda = 0.1 W * 600 s / ln2 = 86.6 J while still allowing ~10 min of\n"
              "full-CPU burst; disabling decay accumulates without bound.\n");
}

}  // namespace
}  // namespace cinder

int main() {
  cinder::Run();
  return 0;
}
