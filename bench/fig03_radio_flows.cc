// Figure 3: radio data path power consumption for 10 second flows across six
// packet rates and three packet sizes.
//
// Paper result: short flows are dominated by the ~9.5 J activation baseline;
// data rate has only a small effect. Average 14.3 J (min 10.5, max 17.6).
#include "bench/bench_util.h"
#include "src/apps/scenarios.h"

namespace cinder {
namespace {

void Run() {
  PrintHeader("Figure 3 — 10 s flow energy across packet sizes and rates",
              "avg 14.3 J, min 10.5 J, max 17.6 J; activation overhead dominates");

  const int rates[] = {1, 5, 10, 20, 30, 40};
  const int sizes[] = {1, 750, 1500};

  TableWriter t("flow energy (J)");
  t.SetColumns({"pkts_per_s", "1B_pkt_J", "750B_pkt_J", "1500B_pkt_J"});
  double sum = 0.0;
  double lo = 1e9;
  double hi = 0.0;
  int n = 0;
  for (int r : rates) {
    std::vector<std::string> row{std::to_string(r)};
    for (int s : sizes) {
      const double joules = MeasureFlowEnergyJoules(r, s);
      row.push_back(TableWriter::Num(joules, 2));
      sum += joules;
      lo = std::min(lo, joules);
      hi = std::max(hi, joules);
      ++n;
    }
    t.AddRow(row);
  }
  t.Print();
  std::printf("summary: avg=%.1f J (paper 14.3), min=%.1f (paper 10.5), max=%.1f (paper 17.6)\n",
              sum / n, lo, hi);
}

}  // namespace
}  // namespace cinder

int main() {
  cinder::Run();
  return 0;
}
