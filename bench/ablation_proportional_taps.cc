// Ablation (paper section 5.2.1, Figure 6a vs 6b): backward proportional taps
// reclaim unused energy from idle reserves.
//
// A plugin reserve fed at 70 mW but consuming nothing. Without a backward
// tap the reserve accumulates indefinitely (energy no other application can
// use); with a 0.1/s backward tap it caps at 700 mJ — a 10 s burst budget —
// and everything beyond that returns to the source.
#include "bench/bench_util.h"
#include "src/apps/browser.h"

namespace cinder {
namespace {

void Run() {
  PrintHeader("Ablation — reclaiming unused energy with backward proportional taps",
              "Figure 6b: idle reserve capped at rate/fraction; unused energy shared");

  TableWriter t("idle plugin reserve level over time (mJ)");
  t.SetColumns({"t_s", "no_backward_tap", "backward_0.1_per_s"});

  SimConfig cfg;
  cfg.decay_enabled = false;  // Isolate the tap mechanism from global decay.
  Simulator sim_a(cfg);
  BrowserApp plain(&sim_a, {});
  Simulator sim_b(cfg);
  BrowserApp::Config back_cfg;
  back_cfg.backward_proportional = true;
  BrowserApp shared(&sim_b, back_cfg);

  for (int step = 0; step <= 12; ++step) {
    if (step > 0) {
      sim_a.Run(Duration::Seconds(10));
      sim_b.Run(Duration::Seconds(10));
    }
    Reserve* ra = sim_a.kernel().LookupTyped<Reserve>(plain.plugin_reserve());
    Reserve* rb = sim_b.kernel().LookupTyped<Reserve>(shared.plugin_reserve());
    t.AddRow({std::to_string(step * 10), TableWriter::Num(ra->energy().millijoules_f(), 0),
              TableWriter::Num(rb->energy().millijoules_f(), 0)});
  }
  t.Print();
  std::printf("summary: the backward tap pins the idle reserve near 70 mW / 0.1 s^-1 =\n"
              "700 mJ (a 10 s burst budget) while the untapped reserve grows without\n"
              "bound; the browser reserve equilibrates near 7000 mJ the same way.\n");
}

}  // namespace
}  // namespace cinder

int main() {
  cinder::Run();
  return 0;
}
