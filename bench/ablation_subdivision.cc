// Ablation (paper sections 2.3/6.1): Cinder's hierarchical subdivision vs
// ECOSystem-style flat currentcy containers under a fork bomb.
//
// A "browser" task and a "plugin" it spawns: under currentcy the plugin (and
// its forks) share the browser's container and dilute it; under Cinder the
// browser subdivides its power once and is untouchable.
#include "bench/bench_util.h"
#include "src/baseline/currentcy.h"
#include "src/core/syscalls.h"
#include "src/sim/simulator.h"

namespace cinder {
namespace {

void Run() {
  PrintHeader("Ablation — subdivision (Cinder) vs flat containers (ECOSystem currentcy)",
              "flat containers cannot protect a parent from its own children");

  // --- ECOSystem-style: plugin forks land in the browser's container. -------
  CurrentcySystem eco;
  int browser_container = eco.CreateContainer(1.0);
  int browser = eco.AddTask(browser_container);
  eco.SetTaskSpinning(browser, true);
  for (int i = 0; i < 5; ++i) {
    eco.RunEpoch();
  }
  const double eco_before = eco.TaskPowerLastEpoch(browser).milliwatts_f();
  for (int i = 0; i < 3; ++i) {  // Plugin + 2 forks.
    int child = eco.AddTask(browser_container);
    eco.SetTaskSpinning(child, true);
  }
  for (int i = 0; i < 5; ++i) {
    eco.RunEpoch();
  }
  const double eco_after = eco.TaskPowerLastEpoch(browser).milliwatts_f();

  // --- Cinder: browser gives the plugin a 20 mW tap off its own reserve. -----
  SimConfig cfg;
  cfg.decay_enabled = false;
  Simulator sim(cfg);
  Kernel& k = sim.kernel();
  Thread* boot = sim.boot_thread();
  auto browser_proc = sim.CreateProcess("browser");
  ObjectId browser_res =
      ReserveCreate(k, *boot, browser_proc.container, Label(Level::k1), "browser").value();
  ObjectId browser_tap = TapCreate(k, sim.taps(), *boot, browser_proc.container,
                                   sim.battery_reserve_id(), browser_res, Label(Level::k1), "bt")
                             .value();
  (void)TapSetConstantPower(k, *boot, browser_tap, Power::Milliwatts(137));
  k.LookupTyped<Thread>(browser_proc.thread)->set_active_reserve(browser_res);
  sim.AttachBody(browser_proc.thread, std::make_unique<SpinBody>());
  // Plugin subdivision + 2 forks, all chained off the plugin's reserve.
  ObjectId plugin_res = kInvalidObjectId;
  for (int i = 0; i < 3; ++i) {
    auto proc = sim.CreateProcess("plugin" + std::to_string(i));
    ObjectId res = ReserveCreate(k, *boot, proc.container, Label(Level::k1), "r").value();
    ObjectId src = i == 0 ? browser_res : plugin_res;
    ObjectId tap = TapCreate(k, sim.taps(), *boot, proc.container, src, res, Label(Level::k1),
                             "t")
                       .value();
    (void)TapSetConstantPower(k, *boot, tap, Power::Milliwatts(i == 0 ? 20 : 10));
    k.LookupTyped<Thread>(proc.thread)->set_active_reserve(res);
    sim.AttachBody(proc.thread, std::make_unique<SpinBody>());
    if (i == 0) {
      plugin_res = res;
    }
  }
  sim.Run(Duration::Seconds(60));
  const double cinder_browser_mw =
      AveragePower(
          sim.meter().ForPrincipalComponent(browser_proc.thread, Component::kCpu),
          Duration::Seconds(60))
          .milliwatts_f();

  TableWriter t("browser power under plugin fork bomb");
  t.SetColumns({"system", "browser_before_mW", "browser_after_forks_mW"});
  t.AddRow({"ECOSystem currentcy", TableWriter::Num(eco_before, 1),
            TableWriter::Num(eco_after, 1)});
  t.AddRow({"Cinder reserves+taps", "137.0", TableWriter::Num(cinder_browser_mw, 1)});
  t.Print();
  std::printf("summary: the flat container dilutes the browser to ~1/4 of its share; the\n"
              "Cinder browser loses only the 20 mW it chose to delegate.\n");
}

}  // namespace
}  // namespace cinder

int main() {
  cinder::Run();
  return 0;
}
