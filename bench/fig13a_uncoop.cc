// Figure 13a: uncooperative radio access — mail and RSS pollers on 60 s
// timers through an energy-unrestricted network stack.
//
// Paper result: staggered, uncoordinated activations; neither poller reuses
// the episodes the other pays for, so the radio is awake most of the run.
#include "bench/fig13_common.h"

int main() {
  cinder::PrintHeader("Figure 13a — uncooperative radio access (1200 s)",
                      "staggered power spikes; radio awake ~949 s of 1201 s");
  (void)cinder::RunFig13(cinder::NetdMode::kUnrestricted);
  return 0;
}
